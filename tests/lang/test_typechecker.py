"""Type-checker unit tests, including the language restrictions."""

import pytest

from repro.lang import TypeCheckError, parse, typecheck
from repro.lang import types as T

FORWARD = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
           "(OnRemote(network, p); (ps, ss))")


def check(source: str):
    return typecheck(parse(source))


def fails(source: str, pattern: str):
    with pytest.raises(TypeCheckError, match=pattern):
        check(source)


class TestValsAndFuns:
    def test_val_with_matching_type(self):
        info = check(f"val x : int = 1 + 2\n{FORWARD}")
        assert info.vals["x"] == T.INT

    def test_val_type_mismatch(self):
        fails(f"val x : int = true\n{FORWARD}", "declared int")

    def test_duplicate_val(self):
        fails(f"val x : int = 1\nval x : int = 2\n{FORWARD}",
              "duplicate val")

    def test_host_val(self):
        info = check(f"val h : host = 10.0.0.1\n{FORWARD}")
        assert info.vals["h"] == T.HOST

    def test_fun_return_type_checked(self):
        fails(f"fun f(x : int) : bool = x + 1\n{FORWARD}",
              "declared bool")

    def test_fun_duplicate_param(self):
        fails(f"fun f(x : int, x : int) : int = x\n{FORWARD}",
              "duplicate parameter")

    def test_fun_shadows_primitive_rejected(self):
        fails(f"fun tcpDst(x : int) : int = x\n{FORWARD}", "redefines")

    def test_fun_call_arity(self):
        fails("fun f(x : int) : int = x\n"
              "val y : int = f(1, 2)\n" + FORWARD, "expects 1")

    def test_fun_call_arg_type(self):
        fails("fun f(x : int) : int = x\n"
              "val y : int = f(true)\n" + FORWARD, "argument 1")


class TestNoRecursion:
    def test_self_recursion_rejected(self):
        fails(f"fun f(x : int) : int = f(x)\n{FORWARD}",
              "unknown function")

    def test_forward_call_rejected(self):
        fails("fun f(x : int) : int = g(x)\n"
              "fun g(x : int) : int = x\n" + FORWARD,
              "unknown function")

    def test_backward_call_allowed(self):
        info = check("fun g(x : int) : int = x + 1\n"
                     "fun f(x : int) : int = g(g(x))\n" + FORWARD)
        assert set(info.funs) == {"f", "g"}


class TestChannels:
    def test_program_needs_a_channel(self):
        fails("val x : int = 1", "at least one channel")

    def test_body_must_return_state_pair(self):
        fails("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
              "(OnRemote(network, p); ps)", "state pair")

    def test_initstate_type_checked(self):
        fails("channel network(ps : int, ss : int, p : ip*tcp*blob) "
              "initstate true is (OnRemote(network, p); (ps, ss))",
              "initstate")

    def test_network_requires_packet_type(self):
        fails("channel network(ps : int, ss : unit, p : int) is "
              "(ps, ss)", "not a valid packet type")

    def test_overloaded_network_allowed(self):
        info = check(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (ps, ss))\n"
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is "
            "(OnRemote(network, p); (ps, ss))")
        assert len(info.channels["network"]) == 2

    def test_duplicate_overload_rejected(self):
        fails(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (ps, ss))\n"
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (ps, ss))", "duplicate network")

    def test_non_network_duplicate_rejected(self):
        fails(
            "channel mine(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(mine, p); (ps, ss))\n"
            "channel mine(ps : int, ss : unit, p : ip*udp*blob) is "
            "(OnRemote(mine, p); (ps, ss))", "only 'network'")

    def test_protocol_state_shared_type(self):
        fails(
            "channel a(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(a, p); (ps, ss))\n"
            "channel b(ps : bool, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(b, p); (ps, ss))", "shared")

    def test_channel_name_not_a_value(self):
        fails("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
              "(network, ss)", "first argument of OnRemote")


class TestEmissions:
    def test_onremote_unknown_channel(self):
        fails("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
              "(OnRemote(nochan, p); (ps, ss))", "is not a channel")

    def test_onremote_packet_type_checked(self):
        fails("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
              "(OnRemote(network, 42); (ps, ss))",
              "does not match channel")

    def test_onremote_first_arg_must_be_name(self):
        fails("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
              "(OnRemote(1 + 1, p); (ps, ss))", "channel name")

    def test_onneighbor_host_arg(self):
        fails("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
              "(OnNeighbor(network, p, 42); (ps, ss))", "must be host")

    def test_onneighbor_ok(self):
        check("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
              "(OnNeighbor(network, p, 10.0.0.1); (ps, ss))")

    def test_emission_to_overloaded_channel_matches_any(self):
        check(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (ps, ss))\n"
            "channel network(ps : int, ss : unit, p2 : ip*udp*blob) is "
            "(OnRemote(network, p2); (ps, ss))")


class TestExpressions:
    def _expr_program(self, ty: str, expr: str) -> str:
        return (f"channel network(ps : int, ss : unit, "
                f"p : ip*tcp*blob) is "
                f"let val x : {ty} = {expr} in "
                f"(OnRemote(network, p); (ps, ss)) end")

    def test_arithmetic_needs_ints(self):
        fails(self._expr_program("int", "1 + true"), "needs int")

    def test_caret_needs_strings(self):
        fails(self._expr_program("string", '1 ^ "a"'), "needs string")

    def test_equality_type_restriction(self):
        fails(self._expr_program("bool", "#2 p = #2 p"),
              "does not admit equality")

    def test_comparison_on_strings_ok(self):
        check(self._expr_program("bool", '"a" < "b"'))

    def test_comparison_on_bools_rejected(self):
        fails(self._expr_program("bool", "true < false"),
              "needs int, string or char")

    def test_if_condition_must_be_bool(self):
        fails(self._expr_program("int", "if 1 then 2 else 3"),
              "must be bool")

    def test_if_branches_must_agree(self):
        fails(self._expr_program("int", "if true then 1 else false"),
              "incompatible types")

    def test_seq_intermediate_must_be_unit(self):
        fails(self._expr_program("int", "(1; 2)"), "type unit")

    def test_projection_range(self):
        fails(self._expr_program("int", "#9 p"), "out of range")

    def test_projection_non_tuple(self):
        fails(self._expr_program("int", "#1 ps"), "non-tuple")

    def test_unbound_variable(self):
        fails(self._expr_program("int", "nosuch"), "unbound variable")

    def test_unknown_function(self):
        fails(self._expr_program("int", "nosuchfun(1)"),
              "unknown function")

    def test_cons_types(self):
        check(self._expr_program("(int) list", "1 :: listNew()"))
        fails(self._expr_program("(int) list", "1 :: 2"),
              "list right operand")

    def test_mktable_flows_into_declared_type(self):
        check(self._expr_program("(host) hash_table", "mkTable(16)"))

    def test_raise_fits_anywhere(self):
        check(self._expr_program("int", "raise NotFound"))

    def test_try_unknown_exception(self):
        fails(self._expr_program("int", "try 1 handle Bogus => 2"),
              "unknown exception")

    def test_user_exception_usable(self):
        check("exception Mine\n" + self._expr_program(
            "int", "try raise Mine handle Mine => 2"))

    def test_exception_cannot_shadow_builtin(self):
        fails("exception NotFound\n" + FORWARD, "shadows a built-in")

    def test_annotations_set_on_ast(self):
        info = check(FORWARD)
        body = info.channels["network"][0].body
        assert body.ty is not None
