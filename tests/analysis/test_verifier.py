"""Verifier integration: the shipped ASPs pass, adversaries fail."""

import pytest

from repro.analysis import verify_program, verify_report
from repro.asps import (audio_client_asp, audio_router_asp,
                        http_gateway_asp, mpeg_client_asp,
                        mpeg_monitor_asp)
from repro.lang import VerificationError, parse, typecheck

ALL_ASPS = {
    "audio-router": audio_router_asp(),
    "audio-client": audio_client_asp(),
    "http-gateway-2": http_gateway_asp("10.0.1.2",
                                       ["10.0.2.2", "10.0.3.2"]),
    "http-gateway-3": http_gateway_asp(
        "10.0.1.2", ["10.0.2.2", "10.0.3.2", "10.0.4.2"]),
    "http-gateway-srchash": http_gateway_asp(
        "10.0.1.2", ["10.0.2.2", "10.0.3.2"], strategy="srchash"),
    "mpeg-monitor": mpeg_monitor_asp(),
    "mpeg-client": mpeg_client_asp(),
}


def check(source: str):
    return typecheck(parse(source))


@pytest.mark.parametrize("name", sorted(ALL_ASPS))
def test_shipped_asp_verifies(name):
    report = verify_program(check(ALL_ASPS[name]))
    assert report.global_termination is not None
    assert report.delivery is not None
    assert report.duplication is not None


@pytest.mark.parametrize("name", sorted(ALL_ASPS))
def test_report_mode_all_pass(name):
    report = verify_report(check(ALL_ASPS[name]))
    assert report.passed, report.summary()
    assert len(report.results) == 4


def test_report_mode_collects_failures():
    bad = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
           "(OnRemote(network, p); OnRemote(network, p); (ps, ss))")
    report = verify_report(check(bad))
    assert not report.passed
    failed = {r.name for r in report.failures}
    assert "duplication" in failed
    assert "FAIL duplication" in report.summary()

    # verify_program raises instead.
    with pytest.raises(VerificationError):
        verify_program(check(bad))


def test_multicast_style_program_needs_privilege():
    """The paper notes multicast can't be proven duplication-safe: it
    must be deployed with verification off (authenticated users)."""
    multicast = """
channel fanout(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(fanout, p); OnRemote(fanout, p); (ps, ss))
"""
    report = verify_report(check(multicast))
    assert not report.passed

    from repro.jit import load_program

    loaded = load_program(multicast, verify=False)  # privileged path
    assert loaded.engine is not None


def test_analysis_timings_recorded():
    report = verify_report(check(ALL_ASPS["mpeg-monitor"]))
    assert all(r.elapsed_ms >= 0 for r in report.results)
    assert [r.name for r in report.results] == [
        "local-termination", "global-termination", "delivery",
        "duplication"]
