"""Wire-compatibility summary and checker tests.

The checker's contract: ``INCOMPATIBLE`` iff some wire packet a mixed
fleet can actually carry is misrouted or misread across generations;
``DEGRADED`` for deltas no packet can witness (dead tagged channels);
``COMPATIBLE`` otherwise.  Derivation must be total over every
type-checked program — it runs on the rollout path, where raising
would turn a veto gate into an outage.
"""

import random

import pytest

from repro.analysis.wire import (CHANNEL_REMOVED, EMISSION_TARGET_DROPPED,
                                 FIELD_LAYOUT_CHANGED, OVERLOAD_NARROWED,
                                 TAIL_CHANGED, OverloadShape, Verdict,
                                 check_compatible, wire_summary)
from repro.fuzz import derive_seed, gen_program
from repro.lang import parse, typecheck


def summary(source: str):
    return wire_summary(typecheck(parse(source)))


def compat(old: str, new: str):
    return check_compatible(summary(old), summary(new))


FWD = ("channel network(ps : int, ss : unit, p : {pt}) is "
       "(OnRemote(network, p); (ps + 1, ss))")
DELIVER = ("channel network(ps : int, ss : unit, p : {pt}) is "
           "(deliver(p); (ps, ss))")


class TestSummaryDerivation:
    def test_shapes_track_codec_layout(self):
        ws = summary(FWD.format(pt="ip*udp*int*blob"))
        (ch,) = ws.channels
        assert ch.name == "network" and ch.tag is None
        (shape,) = ch.shapes
        assert shape.transport == "udp"
        assert shape.views == ("int", "blob")
        assert shape.fixed == 4
        assert shape.has_tail
        assert shape.matchable

    def test_overloads_in_declaration_order(self):
        src = (FWD.format(pt="ip*tcp*int*int") + "\n"
               + FWD.format(pt="ip*tcp*blob"))
        (ch,) = summary(src).channels
        assert [s.views for s in ch.shapes] == [("int", "int"),
                                               ("blob",)]

    def test_emission_topology_follows_helper_funs(self):
        src = """\
fun relay(pkt : ip*udp*blob) : unit = OnRemote(network, pkt)
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (relay(p); (ps, ss))
"""
        ws = summary(src)
        assert ws.channel("network").emits == ("network",)
        assert not ws.channel("network").delivers
        assert ws.emitted_to() == {"network"}

    def test_deliver_flag(self):
        ws = summary(DELIVER.format(pt="ip*udp*blob"))
        assert ws.channel("network").delivers

    def test_digest_stable_and_body_insensitive(self):
        a = summary(FWD.format(pt="ip*udp*blob"))
        b = summary(FWD.format(pt="ip*udp*blob")
                    .replace("ps + 1", "ps + 2"))
        assert a.digest == b.digest  # same wire protocol
        c = summary(FWD.format(pt="ip*udp*int*blob"))
        assert a.digest != c.digest

    def test_admission_overlap_matrix(self):
        tailless8 = OverloadShape("tcp", ("int", "int"), 8, False)
        tail4 = OverloadShape("tcp", ("int", "blob"), 4, True)
        tail12 = OverloadShape("tcp", ("int", "int", "int", "blob"),
                               12, True)
        udp = OverloadShape("udp", ("int", "int"), 8, False)
        assert tailless8.admission_overlaps(tail4)
        assert not tailless8.admission_overlaps(tail12)
        assert tail4.admission_overlaps(tail12)
        assert not tailless8.admission_overlaps(udp)


class TestVerdicts:
    def test_identical_programs_compatible(self):
        report = compat(FWD.format(pt="ip*udp*blob"),
                        FWD.format(pt="ip*udp*blob"))
        assert report.verdict is Verdict.COMPATIBLE
        assert report.ok and not report.reasons

    def test_body_change_is_compatible(self):
        report = compat(FWD.format(pt="ip*udp*blob"),
                        DELIVER.format(pt="ip*udp*blob"))
        assert report.ok

    def test_field_retype_incompatible(self):
        report = compat(FWD.format(pt="ip*udp*int*blob"),
                        FWD.format(pt="ip*udp*host*blob"))
        assert report.verdict is Verdict.INCOMPATIBLE
        assert {r.kind for r in report.reasons} == {FIELD_LAYOUT_CHANGED}

    def test_tail_toggle_incompatible(self):
        report = compat(FWD.format(pt="ip*tcp*int*int"),
                        FWD.format(pt="ip*tcp*int*int*blob"))
        assert not report.ok
        assert TAIL_CHANGED in {r.kind for r in report.reasons}

    def test_disjoint_admission_narrowed(self):
        report = compat(FWD.format(pt="ip*tcp*int*int"),
                        FWD.format(pt="ip*tcp*string"))
        assert not report.ok

    def test_overload_added_flagged_via_reverse_direction(self):
        old = FWD.format(pt="ip*tcp*int*int")
        new = old + "\n" + FWD.format(pt="ip*tcp*blob")
        report = compat(old, new)
        assert not report.ok
        assert any(r.direction == "new->old" for r in report.reasons)

    def test_dead_tagged_channel_only_degrades(self):
        # A tagged channel nobody emits to changes shape: no packet
        # can witness it, so the fleet degrades instead of vetoing.
        base = FWD.format(pt="ip*udp*blob")
        old = base + ("\nchannel probe(ps : int, ss : unit, "
                      "p : ip*udp*blob) is (ps, ss)")
        new = base + ("\nchannel probe(ps : int, ss : unit, "
                      "p : ip*udp*int*blob) is (ps, ss)")
        report = compat(old, new)
        assert report.verdict is Verdict.DEGRADED
        assert report.ok

    def test_live_tagged_channel_change_vetoes(self):
        # probe emits to itself, so probe-tagged packets exist on the
        # wire and its shape change must veto.
        old = """\
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps, ss))
channel probe(qs : int, qq : unit, q : ip*udp*blob) is
  (OnRemote(probe, q); (qs, qq))
"""
        new = old.replace("q : ip*udp*blob", "q : ip*udp*int*blob")
        report = compat(old, new)
        assert report.verdict is Verdict.INCOMPATIBLE

    def test_emitted_channel_dropped_incompatible(self):
        old = """\
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(probe, p); (ps, ss))
channel probe(ps : int, ss : unit, p : ip*udp*blob) is (ps, ss)
"""
        new = FWD.format(pt="ip*udp*blob")
        report = compat(old, new)
        assert not report.ok
        assert EMISSION_TARGET_DROPPED in {r.kind for r in report.reasons}

    def test_dead_tagged_channel_removed_degrades(self):
        old = (FWD.format(pt="ip*udp*blob")
               + "\nchannel probe(ps : int, ss : unit, "
                 "p : ip*udp*blob) is (ps, ss)")
        new = FWD.format(pt="ip*udp*blob")
        report = compat(old, new)
        assert report.verdict is Verdict.DEGRADED
        assert CHANNEL_REMOVED in {r.kind for r in report.reasons}

    def test_symmetry_of_verdict(self):
        old = FWD.format(pt="ip*udp*int*blob")
        new = FWD.format(pt="ip*udp*host*blob")
        assert compat(old, new).verdict == compat(new, old).verdict

    def test_describe_and_to_dict(self):
        report = compat(FWD.format(pt="ip*udp*int*blob"),
                        FWD.format(pt="ip*udp*host*blob"))
        text = report.describe()
        assert text.startswith("incompatible:")
        assert "network" in text
        doc = report.to_dict()
        assert doc["verdict"] == "incompatible"
        assert doc["reasons"][0]["kind"] == FIELD_LAYOUT_CHANGED


class TestTotalityProperty:
    """Satellite of the upgrade drill: derivation is total and
    reflexively compatible over every grammar-emitted program."""

    SEEDS = [derive_seed(2026, "wire-total", i) for i in range(120)]

    @pytest.mark.parametrize("seed", SEEDS[:40],
                             ids=lambda s: f"{s:x}"[:8])
    def test_summary_total_and_reflexive(self, seed):
        source = gen_program(random.Random(seed))
        info = typecheck(parse(source))
        ws = wire_summary(info)
        assert ws.channels and ws.digest
        report = check_compatible(ws, ws)
        assert report.verdict is Verdict.COMPATIBLE, source

    def test_summary_total_over_many_seeds(self):
        # The bulk sweep: no seed may raise, and self-comparison is
        # always compatible (the parametrized cases above give nice
        # per-seed reporting; this one gives volume).
        for seed in self.SEEDS:
            source = gen_program(random.Random(seed))
            ws = wire_summary(typecheck(parse(source)))
            assert check_compatible(ws, ws).ok

    def test_malformed_layout_recorded_not_raised(self):
        # A packet type the codec rejects (non-final blob) must yield
        # an unmatchable shape, not an exception.
        from repro.lang import types as T
        from repro.analysis.wire import _shape_of

        bad = T.TupleType([T.IP, T.BLOB, T.INT])
        shape = _shape_of(bad)
        assert not shape.matchable
        assert not shape.admits(0) and not shape.admits(64)
