"""Path-walker unit tests."""

import pytest

from repro.analysis.paths import (DstKind, PortKind, channel_paths)
from repro.lang import VerificationError, parse, typecheck


def paths_of(source: str, overload: int = 0):
    info = typecheck(parse(source))
    decl = info.channels["network"][overload]
    return channel_paths(info, decl)


class TestEnumeration:
    def test_straight_line_has_one_path(self):
        paths = paths_of(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (ps, ss))")
        assert len(paths) == 1
        assert len(paths[0].emissions) == 1

    def test_if_doubles_paths(self):
        paths = paths_of(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "if tcpSyn(#2 p) then (OnRemote(network, p); (ps, ss)) "
            "else (deliver(p); (ps, ss))")
        assert len(paths) == 2
        assert sorted(len(p.emissions) for p in paths) == [0, 1]
        assert any(p.delivers for p in paths)

    def test_try_adds_handler_path(self):
        paths = paths_of(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); "
            "(try blobByte(#3 p, 0) handle _ => 0, ss))")
        assert len(paths) == 2

    def test_drop_flagged(self):
        paths = paths_of(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(drop(p); deliver(p); (ps, ss))")
        assert paths[0].drops


class TestAbstraction:
    def test_unchanged_forward_is_orig(self):
        paths = paths_of(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (ps, ss))")
        emission = paths[0].emissions[0]
        assert emission.dst.kind is DstKind.ORIG
        assert emission.port.kind is PortKind.ORIG

    def test_literal_rewrite_tracked(self):
        paths = paths_of(
            "val target : host = 10.1.2.3\n"
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, (ipDestSet(#1 p, target), #2 p, #3 p)); "
            "(ps, ss))")
        emission = paths[0].emissions[0]
        assert emission.dst.kind is DstKind.LIT
        assert str(emission.dst.literal) == "10.1.2.3"

    def test_swap_becomes_src(self):
        paths = paths_of(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is "
            "(OnRemote(network, (ipSwap(#1 p), #2 p, #3 p)); (ps, ss))")
        assert paths[0].emissions[0].dst.kind is DstKind.SRC

    def test_port_rewrite_tracked(self):
        paths = paths_of(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is "
            "(OnRemote(network, (#1 p, udpDstSet(#2 p, 999), #3 p)); "
            "(ps, ss))")
        emission = paths[0].emissions[0]
        assert emission.port.kind is PortKind.LIT
        assert emission.port.literal == 999

    def test_src_set_preserves_dst(self):
        paths = paths_of(
            "val v : host = 10.0.0.1\n"
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, (ipSrcSet(#1 p, v), #2 p, #3 p)); "
            "(ps, ss))")
        assert paths[0].emissions[0].dst.kind is DstKind.ORIG


class TestGuards:
    def test_port_guard_constrains_then_branch(self):
        paths = paths_of(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "if tcpDst(#2 p) = 80 then (deliver(p); (ps, ss)) "
            "else (OnRemote(network, p); (ps, ss))")
        then_path = next(p for p in paths if p.delivers)
        else_path = next(p for p in paths if not p.delivers)
        assert then_path.constraint.eq == 80
        assert 80 in else_path.constraint.neq

    def test_guard_via_global_constant(self):
        paths = paths_of(
            "val web : int = 80\n"
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "if tcpDst(#2 p) = web then (deliver(p); (ps, ss)) "
            "else (OnRemote(network, p); (ps, ss))")
        assert any(p.constraint.eq == 80 for p in paths)

    def test_conjunction_applies_both_guards(self):
        paths = paths_of(
            "val v : host = 10.0.0.1\n"
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "if tcpDst(#2 p) = 80 andalso ipDst(#1 p) = v then "
            "(deliver(p); (ps, ss)) "
            "else (OnRemote(network, p); (ps, ss))")
        guarded = next(p for p in paths if p.delivers)
        assert guarded.constraint.eq == 80
        assert str(guarded.constraint.dst_eq) == "10.0.0.1"

    def test_contradictory_guards_prune_path(self):
        paths = paths_of(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "if tcpDst(#2 p) = 80 then "
            "  (if tcpDst(#2 p) = 81 then (drop(p); (ps, ss)) "
            "   else (deliver(p); (ps, ss))) "
            "else (OnRemote(network, p); (ps, ss))")
        # The 80-and-81 path is infeasible: no path may drop.
        assert not any(p.drops for p in paths)
        assert len(paths) == 2

    def test_constraint_admits(self):
        from repro.analysis.paths import Port, PortConstraint, PortKind

        constraint = PortConstraint(eq=80)
        assert constraint.admits(Port(PortKind.LIT, 80))
        assert not constraint.admits(Port(PortKind.LIT, 81))
        assert constraint.admits(Port(PortKind.ORIG))

    def test_budget_rejects_pathological_programs(self):
        # 2^24 paths from nested branch chains blows the budget.
        cond = "tcpSyn(#2 p)"
        branch = "(if {c} then 1 else 2)".format(c=cond)
        exprs = " + ".join([branch] * 24)
        src = (f"channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               f"(OnRemote(network, p); ({exprs}, ss))")
        with pytest.raises(VerificationError, match="budget"):
            paths_of(src)
