"""Dynamic soundness: static verdicts hold at run time.

For every shipped (verifier-accepted) ASP, bombard it with randomized
packets and check the properties the analyses promised:

* **delivery**: every invocation performs at least one emission
  (OnRemote/OnNeighbor/deliver) and never lets an exception escape;
* **duplication**: no invocation emits more than a small constant
  number of packets (linearity per hop);
* and state transitions never corrupt the (ps, ss) pair shape.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asps import (audio_client_asp, audio_router_asp,
                        http_gateway_asp, image_distiller_asp,
                        mpeg_client_asp, mpeg_monitor_asp)
from repro.interp import Interpreter, RecordingContext
from repro.interp.values import default_value
from repro.lang import PlanPRuntimeError, parse, typecheck
from repro.net.addresses import HostAddr
from repro.net.packet import IpHeader, TcpHeader, UdpHeader
from repro.runtime import codec

ASPS = {
    "audio-router": audio_router_asp(),
    "audio-client": audio_client_asp(),
    "http-gateway": http_gateway_asp("10.0.1.2",
                                     ["10.0.2.2", "10.0.3.2"]),
    "mpeg-monitor": mpeg_monitor_asp(),
    "mpeg-client": mpeg_client_asp(),
    "image-distiller": image_distiller_asp(),
}

addresses = st.sampled_from([HostAddr.parse(a) for a in (
    "10.0.1.1", "10.0.1.2", "10.0.2.2", "10.0.3.2", "224.1.1.1")])
ports = st.sampled_from([80, 7000, 8000, 8800, 9700, 9800, 9801, 1234,
                         40001])
payloads = st.one_of(
    st.binary(max_size=64),
    st.just(bytes([0]) + (7).to_bytes(4, "big") + b"\x01\x02" * 20),
    st.just(b"PLAY concert.mpg 9000\n"),
    st.just(b"QRY concert.mpg"),
    st.just(b"GET /x HTTP/1.0\r\n\r\n"),
)


@st.composite
def packets(draw):
    ip = IpHeader(src=draw(addresses), dst=draw(addresses))
    if draw(st.booleans()):
        transport = TcpHeader(src_port=draw(ports),
                              dst_port=draw(ports),
                              syn=draw(st.booleans()))
    else:
        transport = UdpHeader(src_port=draw(ports),
                              dst_port=draw(ports))
    from repro.net.packet import Packet

    return Packet(ip=ip, transport=transport, payload=draw(payloads))


@pytest.mark.parametrize("name", sorted(ASPS))
@given(batch=st.lists(packets(), min_size=1, max_size=12))
@settings(max_examples=25, deadline=None)
def test_accepted_asps_behave_as_verified(name, batch):
    info = typecheck(parse(ASPS[name]))
    interp = Interpreter(info)
    ctx = RecordingContext()

    channels = info.channel_overloads("network")
    states = {id(d): interp.initial_channel_state(d, ctx)
              for d in channels}
    ps = default_value(channels[0].protocol_state_type)

    for packet in batch:
        decl = next((d for d in channels
                     if codec.matches(packet, d.packet_type)), None)
        if decl is None:
            continue
        value = codec.decode(packet, decl.packet_type)
        before = len(ctx.emissions)
        # delivery promise: no exception escapes a verified channel
        ps, states[id(decl)] = interp.run_channel(
            decl, ps, states[id(decl)], value, ctx)
        emitted = [e for e in ctx.emissions[before:]
                   if e.kind in ("remote", "neighbor", "deliver")]
        # delivery promise: at least one exit per invocation
        assert emitted, f"{name}: packet {packet} was swallowed"
        # duplication promise: linear per hop
        assert len(emitted) <= 2, \
            f"{name}: {len(emitted)} emissions from one packet"
        # drops never happen in verified programs
        assert not any(e.kind == "drop" for e in ctx.emissions[before:])
