"""Guaranteed-delivery analysis tests."""

import pytest

from repro.analysis import check_delivery
from repro.lang import VerificationError, parse, typecheck


def check(source: str):
    return typecheck(parse(source))


def rejected(source: str, pattern: str):
    with pytest.raises(VerificationError, match=pattern) as err:
        check_delivery(check(source))
    assert err.value.analysis == "delivery"


class TestAlwaysExits:
    def test_forward_passes(self):
        report = check_delivery(check(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (ps, ss))"))
        assert report.exits_verified == 1

    def test_deliver_counts_as_exit(self):
        check_delivery(check(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(deliver(p); (ps, ss))"))

    def test_silent_path_rejected(self):
        rejected(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "if tcpDst(#2 p) = 7 then (ps, ss) "
            "else (OnRemote(network, p); (ps, ss))",
            "neither forwards nor delivers")

    def test_both_branches_emit_passes(self):
        check_delivery(check(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "if tcpDst(#2 p) = 7 then (deliver(p); (ps, ss)) "
            "else (OnRemote(network, p); (ps, ss))"))

    def test_emit_in_condition_counts(self):
        check_delivery(check(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); "
            "(if ps > 0 then ps else 0 - ps, ss))"))

    def test_emission_inside_fun_counts(self):
        check_delivery(check(
            "fun fwd(p : ip*tcp*blob) : unit = OnRemote(network, p)\n"
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(fwd(p); (ps, ss))"))

    def test_emission_only_in_one_fun_branch_rejected(self):
        rejected(
            "fun maybe(p : ip*tcp*blob, b : bool) : unit = "
            "if b then OnRemote(network, p) else ()\n"
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(maybe(p, tcpSyn(#2 p)); (ps, ss))",
            "neither forwards")


class TestDrops:
    def test_explicit_drop_rejected(self):
        rejected(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "if tcpDst(#2 p) = 7 then (drop(p); deliver(p); (ps, ss)) "
            "else (OnRemote(network, p); (ps, ss))",
            "intentionally drops")

    def test_drop_inside_fun_rejected(self):
        rejected(
            "fun toss(p : ip*tcp*blob) : unit = drop(p)\n"
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(toss(p); OnRemote(network, p); (ps, ss))",
            "intentionally drops")


class TestUnhandledExceptions:
    def test_unguarded_blob_access_rejected(self):
        rejected(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (blobByte(#3 p, 0), ss))",
            "Subscript")

    def test_guarded_blob_access_passes(self):
        check_delivery(check(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); "
            "(try blobByte(#3 p, 0) handle Subscript => 0, ss))"))

    def test_wildcard_handler_covers_everything(self):
        check_delivery(check(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); "
            "(try blobByte(#3 p, 0) + stringToInt(stringOfBlob(#3 p)) "
            "handle _ => 0, ss))"))

    def test_wrong_handler_rejected(self):
        rejected(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); "
            "(try blobByte(#3 p, 0) handle NotFound => 0, ss))",
            "Subscript")

    def test_division_by_literal_nonzero_is_safe(self):
        check_delivery(check(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (ps / 2, ss))"))

    def test_division_by_variable_needs_handler(self):
        rejected(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (1 / ps, ss))",
            "DivideByZero")

    def test_user_raise_needs_handler(self):
        rejected(
            "exception Boom\n"
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); "
            "(if ps > 9 then raise Boom else ps, ss))",
            "Boom")

    def test_exception_in_fun_propagates_to_channel(self):
        rejected(
            "fun risky(b : blob) : int = blobByte(b, 0)\n"
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (risky(#3 p), ss))",
            "Subscript")

    def test_handler_around_fun_call_passes(self):
        check_delivery(check(
            "fun risky(b : blob) : int = blobByte(b, 0)\n"
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); "
            "(try risky(#3 p) handle Subscript => 0, ss))"))

    def test_initstate_exceptions_checked(self):
        rejected(
            "channel network(ps : int, ss : int, p : ip*tcp*blob) "
            "initstate stringToInt(\"x\") is "
            "(OnRemote(network, p); (ps, ss))",
            "BadInt")
