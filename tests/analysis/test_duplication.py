"""Safe-duplication analysis tests."""

import pytest

from repro.analysis import check_duplication
from repro.lang import VerificationError, parse, typecheck


def check(source: str):
    return typecheck(parse(source))


class TestLinearPrograms:
    def test_single_emission_passes(self):
        report = check_duplication(check(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (ps, ss))"))
        assert report.multiplying_channels == set()
        assert report.max_emissions_per_path == 1

    def test_branching_single_emissions_pass(self):
        check_duplication(check(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "if tcpDst(#2 p) = 80 then (OnRemote(network, p); (ps, ss)) "
            "else (deliver(p); (ps, ss))"))

    def test_no_emission_is_trivially_linear(self):
        check_duplication(check(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(deliver(p); (ps, ss))"))


class TestMultiplyingPrograms:
    def test_self_amplifier_rejected(self):
        src = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
               "(OnRemote(network, p); OnRemote(network, p); (ps, ss))")
        with pytest.raises(VerificationError, match="exponential"):
            check_duplication(check(src))

    def test_two_channel_amplifying_cycle_rejected(self):
        src = """
channel a(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(b, p); OnRemote(b, p); (ps, ss))
channel b(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(a, p); (ps, ss))
"""
        with pytest.raises(VerificationError, match="exponential"):
            check_duplication(check(src))

    def test_bounded_fanout_to_leaf_channels_passes(self):
        # Two copies, but to a channel that only delivers: a finite tree.
        src = """
channel leaf(ps : unit, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps, ss))
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(leaf, p); OnRemote(leaf, p); (ps, ss))
"""
        report = check_duplication(check(src))
        assert "network" in report.multiplying_channels
        assert "leaf" not in report.multiplying_channels

    def test_fanout_to_forwarding_chain_passes(self):
        # Copies go to a channel that forwards (once) to a deliverer.
        src = """
channel sink(ps : unit, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps, ss))
channel mid(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(sink, p); (ps, ss))
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(mid, p); OnRemote(mid, p); (ps, ss))
"""
        check_duplication(check(src))

    def test_fanout_into_multiplier_rejected(self):
        # mid forwards back to network (which duplicates): exponential.
        src = """
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(mid, p); OnRemote(mid, p); (ps, ss))
channel mid(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps, ss))
"""
        with pytest.raises(VerificationError, match="exponential"):
            check_duplication(check(src))

    def test_fixpoint_converges(self):
        src = """
channel a(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(b, p); (ps, ss))
channel b(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(c, p); (ps, ss))
channel c(ps : unit, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps, ss))
"""
        report = check_duplication(check(src))
        assert report.fixpoint_iterations <= 4
        assert report.multiplying_channels == set()

    def test_emission_in_fun_counted(self):
        src = """
fun send2(p : ip*udp*blob) : unit =
  (OnRemote(network, p); OnRemote(network, p))
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (send2(p); (ps, ss))
"""
        with pytest.raises(VerificationError, match="exponential"):
            check_duplication(check(src))
