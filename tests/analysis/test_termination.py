"""Termination analyses tests (local and global)."""

import pytest

from repro.analysis import (check_global_termination,
                            check_local_termination)
from repro.lang import VerificationError, parse, typecheck
from repro.lang import ast


def check(source: str):
    return typecheck(parse(source))


FORWARD = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
           "(OnRemote(network, p); (ps, ss))")


class TestLocalTermination:
    def test_straightline_program_passes(self):
        check_local_termination(check(FORWARD))

    def test_fun_chain_passes(self):
        src = ("fun a(x : int) : int = x + 1\n"
               "fun b(x : int) : int = a(a(x))\n" + FORWARD)
        check_local_termination(check(src))

    def test_hand_built_recursion_rejected(self):
        # The type checker already prevents this; the analysis re-checks
        # on a hand-constructed AST (defence in depth).
        info = check("fun f(x : int) : int = x + 1\n" + FORWARD)
        fun = info.funs["f"]
        fun.decl.body = ast.Call(func="f", args=[ast.Var(name="x")])
        with pytest.raises(VerificationError, match="recursion"):
            check_local_termination(info)

    def test_hand_built_forward_call_rejected(self):
        src = ("fun a(x : int) : int = x\n"
               "fun b(x : int) : int = x\n" + FORWARD)
        info = check(src)
        info.funs["a"].decl.body = ast.Call(func="b",
                                            args=[ast.Var(name="x")])
        with pytest.raises(VerificationError, match="forward"):
            check_local_termination(info)


class TestGlobalTermination:
    def test_pure_forwarding_passes(self):
        report = check_global_termination(check(FORWARD))
        assert report.states_explored >= 1
        assert report.rewrite_edges == 0

    def test_ping_pong_rejected(self):
        src = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
               "(OnRemote(network, (ipSwap(#1 p), udpSwap(#2 p), #3 p)); "
               "(ps, ss))")
        with pytest.raises(VerificationError, match="cycle"):
            check_global_termination(check(src))

    def test_unconditional_rewrite_to_this_host_rejected(self):
        src = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
               "(OnRemote(network, "
               "(ipDestSet(#1 p, thisHost()), #2 p, #3 p)); (ps, ss))")
        with pytest.raises(VerificationError, match="cycle"):
            check_global_termination(check(src))

    def test_rewrite_guarded_by_port_passes(self):
        # Rewrites to a literal and changes the destination port so the
        # rewritten packet can never match the guard again.
        src = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
               "if udpDst(#2 p) = 53 then "
               "(OnRemote(network, (ipDestSet(#1 p, 10.0.0.9), "
               "udpDstSet(#2 p, 5353), #3 p)); (ps, ss)) "
               "else (OnRemote(network, p); (ps, ss))")
        check_global_termination(check(src))

    def test_unguarded_literal_rewrite_converges(self):
        # Rewriting everything to one literal destination: the rewritten
        # state rewrites to the *same* literal, so no growing cycle.
        src = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
               "(OnRemote(network, (ipDestSet(#1 p, 10.0.0.9), #2 p, "
               "#3 p)); (ps, ss))")
        check_global_termination(check(src))

    def test_dst_guard_makes_gateway_pass(self):
        src = """
val virtual : host = 10.0.0.1
val server : host = 10.0.0.2
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  if tcpDst(#2 p) = 80 andalso ipDst(#1 p) = virtual then
    (OnRemote(network, (ipDestSet(#1 p, server), #2 p, #3 p));
     (ps + 1, ss))
  else
    (OnRemote(network, p); (ps, ss))
"""
        report = check_global_termination(check(src))
        assert report.rewrite_edges >= 1  # rewrites exist, but acyclic

    def test_two_literal_ping_pong_rejected(self):
        # a -> b and b -> a via literal rewrites on the same guard.
        src = """
val a : host = 10.0.0.1
val b : host = 10.0.0.2
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  if udpDst(#2 p) = 9 then
    (if ipDst(#1 p) = a then
       OnRemote(network, (ipDestSet(#1 p, b), #2 p, #3 p))
     else
       OnRemote(network, (ipDestSet(#1 p, a), #2 p, #3 p));
     (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))
"""
        with pytest.raises(VerificationError, match="cycle"):
            check_global_termination(check(src))

    def test_onneighbor_loop_rejected(self):
        src = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
               "(OnNeighbor(network, p, 10.0.0.2); (ps, ss))")
        with pytest.raises(VerificationError, match="cycle"):
            check_global_termination(check(src))

    def test_reply_to_fixed_port_passes(self):
        # The MPEG-monitor pattern: reply toward the source on a port
        # that can never re-match the guard.
        src = """
channel network(ps : int, ss : unit, p : ip*udp*string) is
  if udpDst(#2 p) = 9700 then
    (OnRemote(network,
              (ipMk(thisHost(), ipSrc(#1 p)), udpMk(9700, 9800), "re"));
     (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))
"""
        check_global_termination(check(src))

    def test_reply_to_same_port_rejected(self):
        # Same shape, but the reply targets the guarded port: a monitor
        # answering another monitor forever.
        src = """
channel network(ps : int, ss : unit, p : ip*udp*string) is
  if udpDst(#2 p) = 9700 then
    (OnRemote(network,
              (ipMk(thisHost(), ipSrc(#1 p)), udpMk(9700, 9700), "re"));
     (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))
"""
        with pytest.raises(VerificationError, match="cycle"):
            check_global_termination(check(src))

    def test_state_space_metrics_reported(self):
        report = check_global_termination(check(FORWARD))
        assert report.emission_sites == 1
        assert report.edges >= 1
