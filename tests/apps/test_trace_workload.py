"""Open-loop workload generation tests (DESIGN §14).

The flash-crowd and flood generators must be (a) deterministic from
their own entropy stream, (b) shaped as documented (spike multiplier,
hot-document collapse, diurnal modulation), and (c) hermetic — drawing
nothing from the shared simulator rng, so adding a workload to a
scenario cannot perturb any other entity's draws (the property the
byte-identical sharded records depend on).
"""

import random

import pytest

from repro.apps.http.trace import (flood_times, generate_trace,
                                   open_loop_arrivals)
from repro.net import Network


@pytest.fixture(scope="module")
def trace():
    return generate_trace(2000, n_files=200, seed=3)


class TestOpenLoopArrivals:
    def test_deterministic_from_seed(self, trace):
        a = open_loop_arrivals(trace, start=0.0, duration=10.0,
                               base_rate=20.0, seed=5)
        b = open_loop_arrivals(trace, start=0.0, duration=10.0,
                               base_rate=20.0, seed=5)
        assert a == b
        c = open_loop_arrivals(trace, start=0.0, duration=10.0,
                               base_rate=20.0, seed=6)
        assert a != c

    def test_deterministic_from_entropy_stream(self, trace):
        a = open_loop_arrivals(trace, start=0.0, duration=10.0,
                               base_rate=20.0,
                               entropy=random.Random("crowd/1"))
        b = open_loop_arrivals(trace, start=0.0, duration=10.0,
                               base_rate=20.0,
                               entropy=random.Random("crowd/1"))
        assert a == b

    def test_arrivals_sorted_within_bounds(self, trace):
        arr = open_loop_arrivals(trace, start=2.0, duration=8.0,
                                 base_rate=30.0, seed=1)
        times = [r.at for r in arr]
        assert times == sorted(times)
        assert all(2.0 <= t < 10.0 for t in times)
        assert all(r.path in trace.sizes for r in arr)

    def test_base_rate_approximated(self, trace):
        arr = open_loop_arrivals(trace, start=0.0, duration=100.0,
                                 base_rate=25.0,
                                 diurnal_amplitude=0.0, seed=2)
        assert len(arr) == pytest.approx(2500, rel=0.15)

    def test_spike_multiplies_rate(self, trace):
        arr = open_loop_arrivals(trace, start=0.0, duration=30.0,
                                 base_rate=10.0,
                                 diurnal_amplitude=0.0,
                                 spike_start=10.0, spike_end=20.0,
                                 spike_multiplier=8.0, seed=4)
        before = sum(1 for r in arr if r.at < 10.0)
        during = sum(1 for r in arr if 10.0 <= r.at < 20.0)
        assert during > 4 * before

    def test_hot_fraction_collapses_onto_one_document(self, trace):
        hot = sorted(trace.sizes)[0]
        arr = open_loop_arrivals(trace, start=0.0, duration=20.0,
                                 base_rate=50.0,
                                 spike_start=5.0, spike_end=15.0,
                                 spike_multiplier=5.0,
                                 hot_fraction=0.9, seed=7)
        in_spike = [r for r in arr if 5.0 <= r.at < 15.0]
        hot_share = (sum(1 for r in in_spike if r.path == hot)
                     / len(in_spike))
        assert hot_share > 0.8
        outside = [r for r in arr if not 5.0 <= r.at < 15.0]
        cold_share = (sum(1 for r in outside if r.path == hot)
                      / len(outside))
        assert cold_share < 0.5  # stationary Zipf, no collapse

    def test_diurnal_modulation(self, trace):
        # period 10 s, amplitude 0.9: the first half-period peaks, the
        # second troughs
        arr = open_loop_arrivals(trace, start=0.0, duration=10.0,
                                 base_rate=100.0,
                                 diurnal_amplitude=0.9,
                                 diurnal_period=10.0, seed=8)
        peak = sum(1 for r in arr if r.at < 5.0)
        trough = sum(1 for r in arr if r.at >= 5.0)
        assert peak > 2 * trough

    def test_validates_parameters(self, trace):
        with pytest.raises(ValueError):
            open_loop_arrivals(trace, start=0.0, duration=0.0,
                               base_rate=10.0)
        with pytest.raises(ValueError):
            open_loop_arrivals(trace, start=0.0, duration=1.0,
                               base_rate=0.0)
        with pytest.raises(ValueError):
            open_loop_arrivals(trace, start=0.0, duration=1.0,
                               base_rate=10.0, diurnal_amplitude=1.0)


class TestFloodTimes:
    def test_deterministic(self):
        a = flood_times(start=1.0, duration=5.0, rate=100.0,
                        entropy=random.Random("flood/a"))
        b = flood_times(start=1.0, duration=5.0, rate=100.0,
                        entropy=random.Random("flood/a"))
        assert a == b

    def test_rate_and_bounds(self):
        times = flood_times(start=2.0, duration=50.0, rate=40.0,
                            entropy=random.Random(1))
        assert times == sorted(times)
        assert all(2.0 <= t < 52.0 for t in times)
        assert len(times) == pytest.approx(2000, rel=0.15)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            flood_times(start=0.0, duration=0.0, rate=10.0,
                        entropy=random.Random(0))
        with pytest.raises(ValueError):
            flood_times(start=0.0, duration=1.0, rate=0.0,
                        entropy=random.Random(0))


class TestEntropyHermetic:
    """Workload generation must never touch the shared simulator rng."""

    def test_arrivals_draw_nothing_from_sim_rng(self, trace):
        net = Network(seed=17)
        before = net.sim.rng.getstate()
        open_loop_arrivals(trace, start=0.0, duration=10.0,
                           base_rate=50.0, spike_start=2.0,
                           spike_end=8.0, spike_multiplier=5.0,
                           hot_fraction=0.8,
                           entropy=net.sim.entropy("crowd/h0"))
        flood_times(start=0.0, duration=10.0, rate=100.0,
                    entropy=net.sim.entropy("flood/h1"))
        assert net.sim.rng.getstate() == before

    def test_entropy_streams_are_memoized_and_independent(self):
        net = Network(seed=17)
        a = net.sim.entropy("stream/a")
        assert net.sim.entropy("stream/a") is a  # one stream per name
        # identically-named streams on an identically-seeded sim agree,
        # regardless of what other streams drew in between — the
        # shard-stability property
        other = Network(seed=17)
        other.sim.entropy("stream/b").random()
        assert (other.sim.entropy("stream/a").random()
                == net.sim.entropy("stream/a").random())

    def test_trace_generation_is_numpy_only(self):
        # generate_trace seeds its own numpy generator; the stdlib
        # global rng and a fresh sim rng both stay untouched
        state = random.getstate()
        net = Network(seed=3)
        sim_state = net.sim.rng.getstate()
        generate_trace(1000, seed=3)
        assert random.getstate() == state
        assert net.sim.rng.getstate() == sim_state

    def test_request_stream_deterministic(self, trace):
        a = trace.request_stream(start=5)
        b = trace.request_stream(start=5)
        assert [next(a) for _ in range(50)] == [next(b)
                                               for _ in range(50)]
