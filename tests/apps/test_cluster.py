"""Cluster toolkit tests: health checks and automatic reconfiguration."""

import pytest

from repro.apps.http import HttpClientWorker, HttpServer, generate_trace
from repro.apps.http.cluster import (ClusterManager, HealthResponder)
from repro.net import Network


def cluster_net(n_servers=2):
    net = Network(seed=51)
    gateway = net.add_router("gw")
    admin = net.add_host("admin")
    net.link(admin, gateway, bandwidth=100e6)
    servers = []
    for i in range(n_servers):
        host = net.add_host(f"s{i}")
        net.link(host, gateway, bandwidth=100e6)
        servers.append(host)
    client = net.add_host("client")
    net.link(client, gateway)
    net.finalize()
    trace = generate_trace(1500, seed=51)
    https = [HttpServer(net, s, trace.sizes) for s in servers]
    responders = [HealthResponder(net, s) for s in servers]
    virtual = gateway.interfaces[0].address
    manager = ClusterManager(net, admin, gateway, virtual, servers)
    return (net, gateway, admin, servers, client, trace, https,
            responders, virtual, manager)


class TestHealthChecks:
    def test_initial_deploy_over_network(self):
        (net, gateway, admin, servers, client, trace, https, responders,
         virtual, manager) = cluster_net()
        net.run(until=2.0)
        assert gateway.planp is not None
        assert gateway.planp.loaded is not None
        assert manager.generation == 1
        assert all(r.pings_answered > 0 for r in responders)

    def test_balanced_service_through_managed_gateway(self):
        (net, gateway, admin, servers, client, trace, https, responders,
         virtual, manager) = cluster_net()
        worker = HttpClientWorker(net, client, virtual, trace)
        worker.start(at=0.5)
        net.run(until=6.0)
        assert len(worker.completed) > 50
        assert all(h.requests_served > 0 for h in https)


class TestFailover:
    def test_dead_server_removed_from_rotation(self):
        (net, gateway, admin, servers, client, trace, https, responders,
         virtual, manager) = cluster_net()
        worker = HttpClientWorker(net, client, virtual, trace,
                                  request_timeout=3.0)
        worker.start(at=0.5)
        net.sim.at(5.0, responders[1].stop)  # s1 crashes
        # Its HTTP side dies too: new connections to it would hang, so
        # also silence the server by dropping its routes at the gateway.
        net.run(until=20.0)

        assert manager.generation >= 2
        assert manager.alive == {"s0"}
        served_after = https[1].requests_served
        net.run(until=25.0)
        # s1 receives nothing new once removed from the program.
        assert https[1].requests_served == served_after
        # Meanwhile the service keeps completing requests.
        late = [r for r in worker.completed if r.completed > 21.0]
        assert late

    def test_recovered_server_rejoins(self):
        (net, gateway, admin, servers, client, trace, https, responders,
         virtual, manager) = cluster_net()
        net.sim.at(3.0, responders[1].stop)
        net.sim.at(8.0, lambda: setattr(responders[1], "alive", True))
        net.run(until=12.0)
        assert manager.alive == {"s0", "s1"}
        assert manager.generation >= 3  # up, down, up again

    def test_events_recorded(self):
        (net, gateway, admin, servers, client, trace, https, responders,
         virtual, manager) = cluster_net()
        net.sim.at(3.0, responders[0].stop)
        net.run(until=8.0)
        alives = [e.alive for e in manager.events]
        assert ("s0", "s1") in alives
        assert ("s1",) in alives
