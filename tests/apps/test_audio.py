"""Audio application tests: codec, source, client, load generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.audio import codec
from repro.apps.audio.client import AudioClient
from repro.apps.audio.loadgen import LoadGenerator
from repro.apps.audio.source import AudioSource
from repro.asps.audio import FMT_MONO16, FMT_MONO8, FMT_STEREO16
from repro.net import Network


class TestCodec:
    def test_frame_encode_decode_roundtrip(self):
        pcm = codec.generate_pcm_stereo16(3, 64)
        payload = codec.encode_frame(FMT_STEREO16, 3, pcm)
        fmt, seq, got = codec.decode_frame(payload)
        assert (fmt, seq, got) == (FMT_STEREO16, 3, pcm)

    def test_short_frame_rejected(self):
        with pytest.raises(ValueError, match="short"):
            codec.decode_frame(b"ab")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            codec.encode_frame(7, 0, b"")

    def test_pcm_deterministic(self):
        assert codec.generate_pcm_stereo16(5, 32) == \
            codec.generate_pcm_stereo16(5, 32)

    def test_bandwidth_ladder_matches_paper(self):
        # 176 / 88 / 44 kbit/s at the default sample rate.
        assert codec.frame_kbps(FMT_STEREO16) == 176.0
        assert codec.frame_kbps(FMT_MONO16) == 88.0
        assert codec.frame_kbps(FMT_MONO8) == 44.0

    def test_degrade_sizes(self):
        pcm = codec.generate_pcm_stereo16(0, 110)
        assert len(codec.degrade(pcm, 0, 1)) == len(pcm) // 2
        assert len(codec.degrade(pcm, 0, 2)) == len(pcm) // 4
        assert codec.degrade(pcm, 1, 1) == pcm  # no-op

    def test_restore_sizes(self):
        pcm = codec.generate_pcm_stereo16(0, 110)
        m8 = codec.degrade(pcm, 0, 2)
        assert len(codec.restore_to_stereo16(m8, 2)) == len(pcm)

    @given(st.integers(0, 100), st.integers(2, 64))
    @settings(max_examples=30, deadline=None)
    def test_degrade_restore_bounded_distortion(self, seq, n):
        """Property: degrading to 8-bit mono and restoring keeps every
        sample within quantisation error of the mono mix."""
        pcm = codec.generate_pcm_stereo16(seq, n)
        mono = np.frombuffer(codec.degrade(pcm, 0, 1), "<i2")
        restored = np.frombuffer(
            codec.restore_to_stereo16(codec.degrade(pcm, 0, 2), 2),
            "<i2").reshape(-1, 2)[:, 0]
        assert np.all(np.abs(mono.astype(int)
                             - restored.astype(int)) < 256)

    def test_degrade_matches_asp_primitives(self):
        """The Python reference and the PLAN-P primitives agree."""
        from repro.interp.primitives import PRIMITIVES
        from repro.interp import RecordingContext

        ctx = RecordingContext()
        pcm = codec.generate_pcm_stereo16(1, 50)
        via_prims = PRIMITIVES["audio16to8"].impl(
            ctx, [PRIMITIVES["audioStereoToMono"].impl(ctx, [pcm])])
        assert via_prims == codec.degrade(pcm, 0, 2)


class TestSourceAndClient:
    def _net(self):
        net = Network(seed=4)
        src = net.add_host("src")
        dst = net.add_host("dst")
        net.link(src, dst)
        net.finalize()
        group = net.multicast_group("224.9.9.9", src, [dst])
        return net, src, dst, group

    def test_source_paces_frames(self):
        net, src, dst, group = self._net()
        source = AudioSource(net, src, group)
        source.start(until=1.0)
        net.run(until=1.0)
        assert source.frames_sent == 50  # 20 ms frames for 1 s

    def test_client_receives_and_counts(self):
        net, src, dst, group = self._net()
        source = AudioSource(net, src, group)
        client = AudioClient(net, dst, group)
        source.start(until=1.0)
        net.run(until=1.1)
        assert client.frames_received == source.frames_sent
        assert client.silent_periods == []
        assert client.restored

    def test_gap_detection_on_pause(self):
        net, src, dst, group = self._net()
        source = AudioSource(net, src, group)
        client = AudioClient(net, dst, group)
        source.start(until=0.5)
        # Resume the same source after a 1-second silence.
        net.sim.at(1.5, lambda: source.start(at=1.5, until=2.0))
        net.run(until=2.2)
        assert len(client.silent_periods) == 1
        assert client.silent_periods[0].duration == pytest.approx(
            1.02, abs=0.1)

    def test_bandwidth_series_reports_stereo_rate(self):
        net, src, dst, group = self._net()
        source = AudioSource(net, src, group)
        client = AudioClient(net, dst, group)
        source.start(until=3.0)
        net.run(until=3.0)
        series = client.bandwidth_series()
        assert len(series) == 3
        assert all(170 < s.kbps < 185 for s in series)
        assert all(s.quality == FMT_STEREO16 for s in series)


class TestLoadGenerator:
    def test_rate_accuracy(self):
        net = Network(seed=4)
        a, b = net.add_host("a"), net.add_host("b")
        net.link(a, b, bandwidth=100e6)
        net.finalize()
        gen = LoadGenerator(net, a, b.address)
        gen.set_rate(800_000)  # 100 kB/s
        net.run(until=2.0)
        sent_bytes = gen.packets_sent * gen.packet_bytes
        assert sent_bytes == pytest.approx(200_000, rel=0.05)

    def test_schedule_steps(self):
        net = Network(seed=4)
        a, b = net.add_host("a"), net.add_host("b")
        net.link(a, b, bandwidth=100e6)
        net.finalize()
        gen = LoadGenerator(net, a, b.address)
        gen.schedule([(0.0, 400_000), (1.0, 0.0)])
        net.run(until=2.0)
        sent = gen.packets_sent
        net.sim.run(until=3.0)
        assert gen.packets_sent == sent  # rate 0 stops traffic

    def test_zero_rate_sends_nothing(self):
        net = Network(seed=4)
        a, b = net.add_host("a"), net.add_host("b")
        net.link(a, b)
        net.finalize()
        gen = LoadGenerator(net, a, b.address)
        net.run(until=1.0)
        assert gen.packets_sent == 0
