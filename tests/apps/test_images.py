"""Image service and distillation experiment tests."""

import pytest

from repro.apps.images import (ImageClient, ImageServer, build_library,
                               run_image_experiment)
from repro.net import Network


class TestLibrary:
    def test_catalogue_is_valid_simg(self):
        from repro.interp.image_prims import decode_image

        library = build_library()
        assert len(library) >= 5
        for name, blob in library.items():
            pixels, bits = decode_image(blob)
            assert pixels.size > 0
            assert bits == 8

    def test_deterministic(self):
        assert build_library() == build_library()

    def test_size_spread(self):
        sizes = sorted(len(b) for b in build_library().values())
        assert sizes[0] < 2000 < sizes[-1]


class TestService:
    def _net(self):
        net = Network(seed=31)
        s = net.add_host("s")
        c = net.add_host("c")
        net.link(s, c, bandwidth=10e6)
        net.finalize()
        library = build_library()
        server = ImageServer(net, s, library)
        client = ImageClient(net, c, s.address, library)
        return net, server, client

    def test_fetch_returns_original(self):
        net, server, client = self._net()
        client.fetch("icon.simg", at=0.0)
        net.run(until=1.0)
        assert len(client.results) == 1
        result = client.results[0]
        assert result.received_bytes == result.original_bytes
        assert (result.width, result.height) == (32, 32)

    def test_unknown_image_fails(self):
        net, server, client = self._net()
        client.fetch("nope.simg", at=0.0)
        net.run(until=1.0)
        assert client.failures == 1
        assert server.errors == 1

    def test_garbage_request_counted(self):
        net, server, client = self._net()
        client._socket.sendto(server.host.address, server.port,
                              b"FETCH x")
        net.run(until=1.0)
        assert server.errors == 1


class TestExperiment:
    @pytest.fixture(scope="class")
    def pair(self):
        plain = run_image_experiment(distillation=False)
        distilled = run_image_experiment(distillation=True)
        return plain, distilled

    def test_all_images_fetched(self, pair):
        plain, distilled = pair
        assert len(plain.fetches) == 5
        assert len(distilled.fetches) == 5

    def test_large_images_distilled(self, pair):
        _plain, distilled = pair
        poster = distilled.result_for("poster.simg")
        assert poster.distilled
        assert poster.received_bytes < 4000

    def test_small_images_untouched(self, pair):
        _plain, distilled = pair
        icon = distilled.result_for("icon.simg")
        assert not icon.distilled

    def test_latency_improved_dramatically(self, pair):
        plain, distilled = pair
        assert distilled.mean_latency() < plain.mean_latency() / 5

    def test_fidelity_traded_for_latency(self, pair):
        plain, distilled = pair
        poster_plain = plain.result_for("poster.simg")
        poster_dist = distilled.result_for("poster.simg")
        assert poster_dist.width < poster_plain.width
        assert poster_dist.latency < poster_plain.latency / 10

    def test_quantize_policy_variant(self):
        result = run_image_experiment(distillation=True,
                                      quantize_bits=4)
        assert result.distilled_count >= 3

    def test_interpreter_backend(self):
        result = run_image_experiment(distillation=True,
                                      backend="interpreter")
        assert result.distilled_count >= 3
