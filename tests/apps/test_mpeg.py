"""MPEG application tests: stream model, server, client."""

import pytest

from repro.apps.mpeg import (FrameAssembler, MpegClient, MpegServer,
                             MpegStream, fragment_frame, parse_chunk)
from repro.apps.mpeg.client import ClientMode
from repro.net import Network


class TestStreamModel:
    def test_gop_pattern(self):
        stream = MpegStream(name="m", gop="IBBP")
        assert [stream.frame_type(i) for i in range(5)] == \
            ["I", "B", "B", "P", "I"]

    def test_bad_gop_rejected(self):
        with pytest.raises(ValueError):
            MpegStream(name="m", gop="IXP")

    def test_mean_rate_close_to_bitrate(self):
        stream = MpegStream(name="m", bitrate_bps=1_000_000, fps=25)
        total = sum(stream.frame_size(i) for i in range(250))  # 10 s
        assert total * 8 / 10 == pytest.approx(1_000_000, rel=0.05)

    def test_i_frames_biggest(self):
        stream = MpegStream(name="m")
        i_size = stream.frame_size(0)   # I
        b_size = stream.frame_size(1)   # B
        assert i_size > 3 * b_size

    def test_setup_line_roundtrip(self):
        stream = MpegStream(name="movie.mpg", width=640, height=480,
                            fps=30, gop="IPPP")
        again = MpegStream.parse_setup(stream.setup_line())
        assert again == MpegStream(name="movie.mpg", width=640,
                                   height=480, fps=30, gop="IPPP")

    def test_parse_setup_rejects_garbage(self):
        with pytest.raises(ValueError):
            MpegStream.parse_setup("HELLO world")


class TestFragmentation:
    def test_small_frame_single_chunk(self):
        chunks = fragment_frame(7, "I", 100)
        assert len(chunks) == 1
        frame_no, idx, n, ftype, data_len = parse_chunk(chunks[0])
        assert (frame_no, idx, n, ftype, data_len) == (7, 0, 1, "I", 100)

    def test_large_frame_chunked(self):
        chunks = fragment_frame(1, "P", 5000)
        assert len(chunks) == 4  # ceil(5000/1400)
        total = sum(parse_chunk(c)[4] for c in chunks)
        assert total == 5000

    def test_short_chunk_rejected(self):
        with pytest.raises(ValueError):
            parse_chunk(b"tiny")

    def test_assembler_completes_in_order(self):
        assembler = FrameAssembler()
        chunks = fragment_frame(0, "I", 3000)
        results = [assembler.add_chunk(c, 0.1) for c in chunks]
        assert results == [False, False, True]
        assert assembler.frames_completed == [(0, "I", 0.1)]

    def test_assembler_tolerates_reordering(self):
        assembler = FrameAssembler()
        chunks = fragment_frame(0, "I", 3000)
        assert not assembler.add_chunk(chunks[2], 0.0)
        assert not assembler.add_chunk(chunks[0], 0.0)
        assert assembler.add_chunk(chunks[1], 0.0)

    def test_duplicate_chunk_does_not_complete_twice(self):
        assembler = FrameAssembler()
        chunks = fragment_frame(0, "I", 100)
        assert assembler.add_chunk(chunks[0], 0.0)
        # A duplicate of a completed frame starts a fresh pending entry,
        # it must not register a second completion immediately.
        assembler.add_chunk(chunks[0], 0.0)
        assert len(assembler.frames_completed) == 2  # same frame twice
        # (the capture experiment counts deliveries, not uniqueness)


class TestServerClient:
    def direct_net(self):
        net = Network(seed=6)
        server_host = net.add_host("server")
        client_host = net.add_host("client")
        net.link(server_host, client_host, bandwidth=100e6)
        net.finalize()
        stream = MpegStream(name="film", bitrate_bps=400_000)
        server = MpegServer(net, server_host, {stream.name: stream})
        return net, server_host, client_host, stream, server

    def test_play_starts_stream(self):
        net, sh, ch, stream, server = self.direct_net()
        client = MpegClient(net, ch, sh.address, "film")
        client.start(at=0.1)
        net.run(until=2.1)
        assert client.mode is ClientMode.DIRECT
        # The setup line carries decode parameters, not the bit rate.
        assert client.setup is not None
        assert (client.setup.name, client.setup.fps,
                client.setup.gop) == (stream.name, stream.fps, stream.gop)
        assert client.frames_received > 30  # ~24 fps for ~2 s
        assert server.play_requests == 1

    def test_unknown_file_fails(self):
        net, sh, ch, stream, server = self.direct_net()
        client = MpegClient(net, ch, sh.address, "nope")
        client.start(at=0.1)
        net.run(until=1.0)
        assert client.mode is ClientMode.FAILED
        assert server.errors == 1

    def test_two_clients_two_sessions(self):
        net, sh, ch, stream, server = self.direct_net()
        c1 = MpegClient(net, ch, sh.address, "film", video_port=9001)
        c2 = MpegClient(net, ch, sh.address, "film", video_port=9002)
        c1.start(at=0.1)
        c2.start(at=0.2)
        net.run(until=2.0)
        assert len(server.sessions) == 2
        assert c1.frames_received > 0
        assert c2.frames_received > 0

    def test_query_timeout_falls_back_to_direct(self):
        # Monitor address given, but nothing answers there.
        net, sh, ch, stream, server = self.direct_net()
        client = MpegClient(net, ch, sh.address, "film",
                            monitor=sh.address, query_timeout=0.3)
        client.start(at=0.1)
        net.run(until=3.0)
        assert client.mode is ClientMode.DIRECT
        assert client.frames_received > 0

    def test_frame_rate_measurement(self):
        net, sh, ch, stream, server = self.direct_net()
        client = MpegClient(net, ch, sh.address, "film")
        client.start(at=0.0)
        net.run(until=3.0)
        assert client.frame_rate((1.0, 3.0)) == pytest.approx(
            stream.fps, rel=0.15)
