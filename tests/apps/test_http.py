"""HTTP application tests: trace, server, client, gateway baseline."""

import pytest

from repro.apps.http import (BuiltinGateway, HttpClientWorker, HttpServer,
                             generate_trace)
from repro.net import Network


class TestTrace:
    def test_deterministic(self):
        a = generate_trace(500, seed=3)
        b = generate_trace(500, seed=3)
        assert [e.path for e in a.entries] == [e.path for e in b.entries]

    def test_different_seeds_differ(self):
        a = generate_trace(500, seed=3)
        b = generate_trace(500, seed=4)
        assert [e.path for e in a.entries] != [e.path for e in b.entries]

    def test_sizes_bounded(self):
        trace = generate_trace(1000, min_size=128, max_size=10_000,
                               seed=1)
        assert all(128 <= s <= 10_000 for s in trace.sizes.values())

    def test_zipf_head_is_hot(self):
        trace = generate_trace(20_000, n_files=500, seed=2)
        from collections import Counter

        counts = Counter(e.path for e in trace.entries)
        top10 = sum(c for _p, c in counts.most_common(10))
        assert top10 > 0.3 * len(trace)  # heavy head

    def test_request_stream_wraps(self):
        trace = generate_trace(10, seed=0)
        stream = trace.request_stream()
        first_pass = [next(stream) for _ in range(10)]
        second_pass = [next(stream) for _ in range(10)]
        assert first_pass == second_pass

    def test_entry_sizes_consistent_with_catalogue(self):
        trace = generate_trace(200, seed=5)
        assert all(trace.sizes[e.path] == e.size for e in trace.entries)


def client_server(workers=4):
    net = Network(seed=8)
    c = net.add_host("c")
    s = net.add_host("s")
    net.link(c, s, bandwidth=100e6)
    net.finalize()
    trace = generate_trace(200, seed=8)
    server = HttpServer(net, s, trace.sizes, workers=workers)
    return net, c, s, trace, server


class TestServer:
    def test_serves_correct_body(self):
        net, c, s, trace, server = client_server()
        worker = HttpClientWorker(net, c, s.address, trace)
        worker.start()
        net.run(until=1.0)
        assert worker.completed
        first = worker.completed[0]
        assert first.bytes_received == trace.entries[0].size

    def test_closed_loop_issues_continuously(self):
        net, c, s, trace, server = client_server()
        worker = HttpClientWorker(net, c, s.address, trace)
        worker.start()
        net.run(until=5.0)
        assert len(worker.completed) > 50
        assert server.requests_served >= len(worker.completed)

    def test_cpu_saturation_bounds_throughput(self):
        net, c, s, trace, server = client_server()
        workers = [HttpClientWorker(net, c, s.address, trace,
                                    trace_offset=i * 13)
                   for i in range(12)]
        for w in workers:
            w.start()
        net.run(until=6.0)
        total = sum(len(w.completed) for w in workers)
        mean_cpu = (server.base_cpu_s
                    + trace.mean_size * server.per_byte_cpu_s)
        capacity = 6.0 / mean_cpu
        assert total <= capacity * 1.05
        assert total >= capacity * 0.7  # saturated, not idle

    def test_404_for_unknown_path(self):
        net, c, s, trace, server = client_server()
        # A trace entry for a path the server does not have.
        from repro.apps.http.trace import Trace, TraceEntry

        ghost = Trace(entries=[TraceEntry("/ghost.html", 100)],
                      sizes={})
        worker = HttpClientWorker(net, c, s.address, ghost)
        worker.start()
        net.run(until=1.0)
        assert server.errors >= 1

    def test_latency_measured(self):
        net, c, s, trace, server = client_server()
        worker = HttpClientWorker(net, c, s.address, trace)
        worker.start()
        net.run(until=2.0)
        assert worker.mean_latency((0.0, 2.0)) > 0


class TestBuiltinGateway:
    def gateway_net(self):
        net = Network(seed=8)
        c = net.add_host("c")
        g = net.add_router("g")
        s0 = net.add_host("s0")
        s1 = net.add_host("s1")
        net.link(c, g)
        net.link(g, s0, bandwidth=100e6)
        net.link(g, s1, bandwidth=100e6)
        net.finalize()
        trace = generate_trace(100, seed=8)
        servers = [HttpServer(net, s0, trace.sizes),
                   HttpServer(net, s1, trace.sizes)]
        virtual = g.interfaces[0].address
        gateway = BuiltinGateway(g, virtual, [s0.address, s1.address])
        return net, c, virtual, trace, servers, gateway

    def test_balances_alternating(self):
        net, c, virtual, trace, servers, gateway = self.gateway_net()
        worker = HttpClientWorker(net, c, virtual, trace)
        worker.start()
        net.run(until=3.0)
        served = [s.requests_served for s in servers]
        assert sum(served) > 20
        assert min(served) / max(served) > 0.8

    def test_connection_affinity(self):
        net, c, virtual, trace, servers, gateway = self.gateway_net()
        worker = HttpClientWorker(net, c, virtual, trace)
        worker.start()
        net.run(until=2.0)
        # Every response body completed -> no connection was split
        # across servers mid-stream.
        assert worker.failures == 0
        assert all(r.bytes_received == trace.sizes[r.path]
                   for r in worker.completed)

    def test_client_sees_only_virtual_address(self):
        net, c, virtual, trace, servers, gateway = self.gateway_net()
        sources = set()
        c.receive_taps.append(
            lambda p, i: sources.add(str(p.ip.src)))
        worker = HttpClientWorker(net, c, virtual, trace)
        worker.start()
        net.run(until=1.0)
        assert sources == {str(virtual)}

    def test_needs_at_least_one_server(self):
        net = Network(seed=1)
        g = net.add_router("g")
        h = net.add_host("h")
        net.link(g, h)
        net.finalize()
        with pytest.raises(ValueError):
            BuiltinGateway(g, g.interfaces[0].address, [])
