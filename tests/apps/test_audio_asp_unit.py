"""Unit tests of the audio ASPs' packet transformations (no network:
RecordingContext with controlled link readings)."""

import pytest

from repro.apps.audio.codec import (decode_frame, degrade, encode_frame,
                                    generate_pcm_stereo16,
                                    restore_to_stereo16)
from repro.asps import audio_client_asp, audio_router_asp
from repro.asps.audio import FMT_MONO16, FMT_MONO8, FMT_STEREO16
from repro.interp import Interpreter, RecordingContext
from repro.lang import parse, typecheck
from repro.net.addresses import HostAddr
from repro.net.packet import IpHeader, UdpHeader

GROUP = HostAddr.parse("224.1.1.1")


def audio_packet(fmt=FMT_STEREO16, seq=0, samples=32):
    pcm = generate_pcm_stereo16(seq, samples)
    payload = encode_frame(fmt, seq, degrade(pcm, 0, fmt))
    return (IpHeader(src=HostAddr.parse("10.0.0.1"), dst=GROUP),
            UdpHeader(src_port=5000, dst_port=7000), payload)


def run_router(packet, *, load, bandwidth=2000):
    info = typecheck(parse(audio_router_asp()))
    interp = Interpreter(info)
    ctx = RecordingContext(default_load=load,
                           default_bandwidth=bandwidth)
    decl = info.channels["network"][0]
    ss = interp.initial_channel_state(decl, ctx)
    interp.run_channel(decl, 0, ss, packet, ctx)
    assert len(ctx.remote_emissions) == 1
    return ctx.remote_emissions[0].packet_value


class TestRouterAsp:
    def test_no_load_passes_through_unchanged(self):
        packet = audio_packet()
        emitted = run_router(packet, load=0)
        assert emitted[2] == packet[2]

    def test_mid_load_degrades_to_mono16(self):
        # headroom = 2000 - 900 = 1100: below headMid, above headLow
        packet = audio_packet()
        emitted = run_router(packet, load=900)
        fmt, seq, pcm = decode_frame(emitted[2])
        assert fmt == FMT_MONO16
        assert seq == 0
        original = decode_frame(packet[2])[2]
        assert pcm == degrade(original, FMT_STEREO16, FMT_MONO16)

    def test_high_load_degrades_to_mono8(self):
        packet = audio_packet()
        emitted = run_router(packet, load=1800)  # headroom 200 < 600
        fmt, _seq, pcm = decode_frame(emitted[2])
        assert fmt == FMT_MONO8
        original = decode_frame(packet[2])[2]
        assert pcm == degrade(original, FMT_STEREO16, FMT_MONO8)

    def test_never_upgrades_already_degraded_frames(self):
        packet = audio_packet(fmt=FMT_MONO8, seq=3)
        emitted = run_router(packet, load=0)  # plenty of headroom
        fmt, seq, _pcm = decode_frame(emitted[2])
        assert fmt == FMT_MONO8  # cannot reconstruct lost fidelity
        assert seq == 3

    def test_preserves_headers(self):
        packet = audio_packet()
        emitted = run_router(packet, load=1800)
        assert emitted[0] == packet[0]
        assert emitted[1] == packet[1]

    def test_non_audio_traffic_untouched(self):
        info = typecheck(parse(audio_router_asp()))
        interp = Interpreter(info)
        ctx = RecordingContext(default_load=1800)
        decl = info.channels["network"][0]
        other = (IpHeader(dst=HostAddr.parse("10.0.0.2")),
                 UdpHeader(src_port=1, dst_port=53), b"dns?")
        interp.run_channel(decl, 0, None, other, ctx)
        assert ctx.remote_emissions[0].packet_value == other


class TestClientAsp:
    def run_client(self, packet):
        info = typecheck(parse(audio_client_asp()))
        interp = Interpreter(info)
        ctx = RecordingContext()
        decl = info.channels["network"][0]
        interp.run_channel(decl, 0, None, packet, ctx)
        assert len(ctx.delivered) == 1
        return ctx.delivered[0].packet_value

    @pytest.mark.parametrize("fmt", [FMT_STEREO16, FMT_MONO16,
                                     FMT_MONO8])
    def test_restores_every_format_to_stereo(self, fmt):
        packet = audio_packet(fmt=fmt, seq=9)
        delivered = self.run_client(packet)
        out_fmt, seq, pcm = decode_frame(delivered[2])
        assert out_fmt == FMT_STEREO16
        assert seq == 9
        wire_pcm = decode_frame(packet[2])[2]
        assert pcm == restore_to_stereo16(wire_pcm, fmt)

    def test_stereo_frames_unchanged_in_content(self):
        packet = audio_packet(fmt=FMT_STEREO16, seq=1)
        delivered = self.run_client(packet)
        assert decode_frame(delivered[2])[2] == \
            decode_frame(packet[2])[2]

    def test_malformed_frame_delivered_as_is(self):
        packet = (IpHeader(dst=GROUP),
                  UdpHeader(src_port=1, dst_port=7000), b"xy")
        delivered = self.run_client(packet)
        assert delivered[2] == b"xy"
