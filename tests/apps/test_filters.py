"""Compression / filtering / firewall ASP tests (paper §1 operations)."""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asps import (content_filter_asp, firewall_asp,
                        link_compressor_asp, link_decompressor_asp)
from repro.interp import RecordingContext
from repro.interp.primitives import PRIMITIVES
from repro.lang import PlanPRuntimeError, VerificationError
from repro.net import Network
from repro.net.packet import tcp_packet, udp_packet
from repro.runtime import Deployment, PlanPLayer


def call(name, *args):
    return PRIMITIVES[name].impl(RecordingContext(), list(args))


class TestCompressionPrimitives:
    def test_roundtrip(self):
        data = b"the quick brown fox " * 20
        assert call("blobDecompress", call("blobCompress", data)) == data

    def test_compression_shrinks_redundant_data(self):
        data = b"A" * 1000
        assert len(call("blobCompress", data)) < 50

    def test_decompress_garbage_raises(self):
        with pytest.raises(PlanPRuntimeError) as err:
            call("blobDecompress", b"not deflate")
        assert err.value.exception_name == "BadPacket"

    def test_is_compressed_detection(self):
        assert call("blobIsCompressed", call("blobCompress", b"xy" * 50))
        assert not call("blobIsCompressed", b"plain text")
        assert not call("blobIsCompressed", b"")

    def test_deterministic_across_calls(self):
        data = b"determinism matters for engine equivalence" * 4
        assert call("blobCompress", data) == call("blobCompress", data)

    @given(st.binary(min_size=0, max_size=500))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        assert call("blobDecompress", call("blobCompress", data)) == data


class TestCompressionTunnel:
    APP_PORT = 4444

    def _tunnel_net(self, with_asps: bool):
        """sender -- r1 ==slow== r2 -- receiver, ASPs on r1/r2."""
        net = Network(seed=71)
        sender = net.add_host("sender")
        r1 = net.add_router("r1")
        r2 = net.add_router("r2")
        receiver = net.add_host("receiver")
        net.link(sender, r1, bandwidth=10e6)
        slow = net.link(r1, r2, bandwidth=128_000, queue_limit=512)
        net.link(r2, receiver, bandwidth=10e6)
        net.finalize()
        if with_asps:
            deployment = Deployment()
            deployment.install(
                link_compressor_asp(app_port=self.APP_PORT), [r1],
                source_name="compressor")
            deployment.install(
                link_decompressor_asp(app_port=self.APP_PORT), [r2],
                source_name="decompressor")
        return net, sender, r1, r2, receiver, slow

    def _send_text(self, net, sender, receiver, n=30):
        got = []
        sock = net.udp(receiver).bind(self.APP_PORT)
        sock.on_datagram = lambda d, s, p: got.append(d)
        out = net.udp(sender).bind()
        payload = ("All work and no play makes Jack a dull boy. " * 20
                   ).encode("latin-1")
        for i in range(n):
            net.sim.at(i * 0.2, lambda: out.sendto(
                receiver.address, self.APP_PORT, payload))
        net.run(until=n * 0.2 + 5.0)
        return got, payload

    def test_payloads_restored_exactly(self):
        net, sender, r1, r2, receiver, slow = self._tunnel_net(True)
        got, payload = self._send_text(net, sender, receiver)
        assert len(got) == 30
        assert all(d == payload for d in got)

    def test_slow_link_carries_fewer_bytes(self):
        plain_net = self._tunnel_net(False)
        got_plain, _ = self._send_text(plain_net[0], plain_net[1],
                                       plain_net[4])
        plain_bytes = plain_net[5].tx_queue(
            plain_net[2].interfaces[1]).stats.bytes_sent

        comp_net = self._tunnel_net(True)
        got_comp, _ = self._send_text(comp_net[0], comp_net[1],
                                      comp_net[4])
        comp_bytes = comp_net[5].tx_queue(
            comp_net[2].interfaces[1]).stats.bytes_sent

        assert len(got_plain) == len(got_comp) == 30
        assert comp_bytes < plain_bytes / 5  # highly redundant text

    def test_small_payloads_skip_compression(self):
        net, sender, r1, r2, receiver, slow = self._tunnel_net(True)
        got = []
        sock = net.udp(receiver).bind(self.APP_PORT)
        sock.on_datagram = lambda d, s, p: got.append(d)
        out = net.udp(sender).bind()
        out.sendto(receiver.address, self.APP_PORT, b"tiny")
        net.run(until=2.0)
        assert got == [b"tiny"]
        assert r1.planp.protocol_state == 0  # compressor left it alone


class TestContentFilter:
    def test_matching_requests_redirected(self):
        net = Network(seed=72)
        client = net.add_host("client")
        router = net.add_router("router")
        server = net.add_host("server")
        policy = net.add_host("policy")
        net.link(client, router)
        net.link(router, server)
        net.link(router, policy)
        net.finalize()
        PlanPLayer(router).install(
            content_filter_asp("/private", str(policy.address)))
        at_server, at_policy = [], []
        server.delivery_taps.append(lambda p: at_server.append(p))
        policy.delivery_taps.append(lambda p: at_policy.append(p))

        client.ip_send(tcp_packet(client.address, server.address, 5, 80,
                                  b"GET /public HTTP/1.0\r\n\r\n"))
        client.ip_send(tcp_packet(client.address, server.address, 5, 80,
                                  b"GET /private/x HTTP/1.0\r\n\r\n"))
        net.run(until=1.0)
        assert len(at_server) == 1
        assert len(at_policy) == 1
        assert b"/private" in at_policy[0].payload

    def test_filter_passes_verification(self):
        from repro.analysis import verify_report
        from repro.lang import parse, typecheck

        report = verify_report(typecheck(parse(
            content_filter_asp("blocked", "10.0.9.9"))))
        assert report.passed


class TestFirewall:
    def test_rejected_by_delivery_analysis(self):
        from repro.analysis import verify_report
        from repro.lang import parse, typecheck

        report = verify_report(typecheck(parse(firewall_asp([23]))))
        assert not report.passed
        assert {r.name for r in report.failures} == {"delivery"}

    def test_privileged_deployment_blocks_ports(self):
        net = Network(seed=73)
        outside = net.add_host("outside")
        router = net.add_router("router")
        inside = net.add_host("inside")
        net.link(outside, router)
        net.link(router, inside)
        net.finalize()
        PlanPLayer(router).install(firewall_asp([23, 135]),
                                   verify=False)
        delivered = []
        inside.delivery_taps.append(lambda p: delivered.append(
            p.transport.dst_port))
        for port in (23, 80, 135, 443):
            outside.ip_send(tcp_packet(outside.address, inside.address,
                                       9, port, b"x"))
        net.run(until=1.0)
        assert delivered == [80, 443]
        assert router.planp.stats.packets_dropped == 2

    def test_needs_at_least_one_port(self):
        with pytest.raises(ValueError):
            firewall_asp([])
