"""Unit tests of the MPEG monitor/capture ASPs (RecordingContext)."""

import pytest

from repro.asps import mpeg_client_asp, mpeg_monitor_asp
from repro.interp import Interpreter, RecordingContext
from repro.interp.values import default_value
from repro.lang import parse, typecheck
from repro.net.addresses import HostAddr
from repro.net.packet import IpHeader, TcpHeader, UdpHeader

SERVER = HostAddr.parse("10.0.5.5")
CLIENT = HostAddr.parse("10.0.6.6")
OTHER = HostAddr.parse("10.0.7.7")
MONITOR = HostAddr.parse("10.0.8.8")


class MonitorHarness:
    def __init__(self):
        info = typecheck(parse(mpeg_monitor_asp()))
        self.interp = Interpreter(info)
        self.ctx = RecordingContext(host=MONITOR)
        self.tcp_chan, self.udp_chan = info.channels["network"]
        self.ps = default_value(self.tcp_chan.protocol_state_type)
        self.states = {
            id(self.tcp_chan): self.interp.initial_channel_state(
                self.tcp_chan, self.ctx),
            id(self.udp_chan): self.interp.initial_channel_state(
                self.udp_chan, self.ctx)}

    def feed_tcp(self, src, dst, sport, dport, text):
        packet = (IpHeader(src=src, dst=dst),
                  TcpHeader(src_port=sport, dst_port=dport), text)
        self.ps, self.states[id(self.tcp_chan)] = \
            self.interp.run_channel(self.tcp_chan, self.ps,
                                    self.states[id(self.tcp_chan)],
                                    packet, self.ctx)

    def query(self, file_name, src=OTHER):
        packet = (IpHeader(src=src, dst=MONITOR),
                  UdpHeader(src_port=40001, dst_port=9700),
                  f"QRY {file_name}")
        before = len(self.ctx.remote_emissions)
        self.ps, self.states[id(self.udp_chan)] = \
            self.interp.run_channel(self.udp_chan, self.ps,
                                    self.states[id(self.udp_chan)],
                                    packet, self.ctx)
        reply = self.ctx.remote_emissions[before]
        return reply.packet_value

    def observe_session(self, file_name="movie.mpg", port=9000):
        self.feed_tcp(CLIENT, SERVER, 40000, 8000,
                      f"PLAY {file_name} {port}\n")
        self.feed_tcp(SERVER, CLIENT, 8000, 40000,
                      f"SETUP {file_name} 352 240 24 IBBP\n")


class TestMonitorAsp:
    def test_miss_before_any_session(self):
        harness = MonitorHarness()
        reply = harness.query("movie.mpg")
        assert reply[2].startswith("MISS movie.mpg")

    def test_hit_after_play_and_setup(self):
        harness = MonitorHarness()
        harness.observe_session()
        reply = harness.query("movie.mpg")
        header, _, setup = reply[2].partition("\n")
        assert header == f"HIT {CLIENT} 9000"
        assert setup.startswith("SETUP movie.mpg")

    def test_reply_addressing(self):
        harness = MonitorHarness()
        harness.observe_session()
        reply = harness.query("movie.mpg", src=OTHER)
        assert reply[0].src == MONITOR
        assert reply[0].dst == OTHER
        assert reply[1].dst_port == 9800  # the fixed client reply port

    def test_play_without_setup_is_miss(self):
        harness = MonitorHarness()
        harness.feed_tcp(CLIENT, SERVER, 40000, 8000,
                         "PLAY movie.mpg 9000\n")
        assert harness.query("movie.mpg")[2].startswith("MISS")

    def test_unrelated_tcp_traffic_ignored_and_forwarded(self):
        harness = MonitorHarness()
        before = len(harness.ctx.remote_emissions)
        harness.feed_tcp(CLIENT, SERVER, 40000, 80,
                         "GET / HTTP/1.0\r\n\r\n")
        assert len(harness.ctx.remote_emissions) == before + 1
        assert harness.query("movie.mpg")[2].startswith("MISS")

    def test_per_file_tracking(self):
        harness = MonitorHarness()
        harness.observe_session("a.mpg", 9001)
        harness.observe_session("b.mpg", 9002)
        assert "9001" in harness.query("a.mpg")[2]
        assert "9002" in harness.query("b.mpg")[2]

    def test_malformed_query_forwarded_not_answered(self):
        harness = MonitorHarness()
        packet = (IpHeader(src=OTHER, dst=MONITOR),
                  UdpHeader(src_port=1, dst_port=9700), "QRY")
        harness.interp.run_channel(
            harness.udp_chan, harness.ps,
            harness.states[id(harness.udp_chan)], packet, harness.ctx)
        emission = harness.ctx.remote_emissions[-1]
        assert emission.packet_value[2] == "QRY"  # passthrough


class TestCaptureAsp:
    def _harness(self):
        info = typecheck(parse(mpeg_client_asp()))
        interp = Interpreter(info)
        ctx = RecordingContext(host=CLIENT)
        config_chan, video_chan = info.channels["network"]
        ps = default_value(config_chan.protocol_state_type)
        return interp, ctx, config_chan, video_chan, ps

    def test_register_then_capture(self):
        interp, ctx, config_chan, video_chan, ps = self._harness()
        config = (IpHeader(src=CLIENT, dst=CLIENT),
                  UdpHeader(src_port=40002, dst_port=9801),
                  OTHER, 9000)
        ps, _ = interp.run_channel(config_chan, ps, 0, config, ctx)
        video = (IpHeader(src=SERVER, dst=OTHER),
                 UdpHeader(src_port=8001, dst_port=9000), b"frame")
        ps, _ = interp.run_channel(video_chan, ps, 0, video, ctx)
        assert len(ctx.delivered) == 2  # the config echo + the capture
        assert ctx.delivered[-1].packet_value[2] == b"frame"

    def test_unregistered_stream_not_captured(self):
        interp, ctx, _config_chan, video_chan, ps = self._harness()
        video = (IpHeader(src=SERVER, dst=OTHER),
                 UdpHeader(src_port=8001, dst_port=9000), b"frame")
        interp.run_channel(video_chan, ps, 0, video, ctx)
        assert ctx.delivered == []
        assert len(ctx.remote_emissions) == 1  # forwarded instead
