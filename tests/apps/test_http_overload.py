"""HTTP graceful-degradation tests (DESIGN §14).

Server-side: bounded backlog with counted 503 shedding, admission
control, deadline-aware shed on arrival and expiry at dequeue, and the
bounded TCP SYN backlog.  Client-side: the jittered-backoff retry of
the *same* trace entry, 503-as-retryable, and abandonment accounting.
The historical defaults (every knob ``None``) keep the pre-§14
unbounded behavior, which ``test_http.py`` continues to cover.
"""

from repro.apps.http import HttpClientWorker, HttpServer, OpenLoopClient
from repro.apps.http.trace import TimedRequest, Trace, TraceEntry
from repro.net import Network
from repro.net.overload import AdmissionController
from repro.net.packet import tcp_packet


def one_doc_trace(size: int = 1000) -> Trace:
    return Trace(entries=[TraceEntry("/x.html", size)],
                 sizes={"/x.html": size})


def small_net(**server_kw):
    net = Network(seed=9)
    c = net.add_host("c")
    s = net.add_host("s")
    net.link(c, s, bandwidth=100e6)
    net.finalize()
    trace = one_doc_trace()
    server = HttpServer(net, s, trace.sizes, **server_kw)
    return net, c, s, trace, server


def arrivals(times) -> list[TimedRequest]:
    return [TimedRequest(at=t, path="/x.html") for t in times]


class TestServerShedding:
    def test_backlog_full_sheds_503(self):
        # One worker stuck on a long request; a backlog of 1 means the
        # third concurrent arrival finds the queue full.
        net, c, s, trace, server = small_net(
            workers=1, max_backlog=1, base_cpu_s=0.5)
        client = OpenLoopClient(net, c, s.address,
                                arrivals([0.0, 0.01, 0.02, 0.03]))
        client.start()
        net.run(until=3.0)
        assert server.shed >= 2
        assert client.shed_responses >= 2
        assert len(client.completed) >= 1  # the goods still get through
        assert net.obs.metrics.counter(
            "http.server.shed_total").value == server.shed + server.expired

    def test_shed_emits_overload_event(self):
        net, c, s, trace, server = small_net(
            workers=1, max_backlog=1, base_cpu_s=0.5)
        client = OpenLoopClient(net, c, s.address,
                                arrivals([0.0, 0.01, 0.02, 0.03]))
        client.start()
        net.run(until=3.0)
        sheds = [e for e in net.obs.events.events
                 if e.kind == "overload"
                 and e.data.get("action") == "shed"]
        assert sheds
        assert {e.data["reason"] for e in sheds} <= {
            "backlog-full", "deadline", "admission"}

    def test_admission_refusal_sheds(self):
        # burst=1 at a 1/s refill: of two simultaneous arrivals exactly
        # one is admitted.
        net, c, s, trace, server = small_net(
            admission=AdmissionController(rate=1.0, floor=1.0,
                                          burst=1.0))
        client = OpenLoopClient(net, c, s.address,
                                arrivals([0.0, 0.001]))
        client.start()
        net.run(until=2.0)
        assert server.admission.refused == 1
        assert server.shed == 1
        assert len(client.completed) == 1

    def test_deadline_shed_on_arrival(self):
        # The CPU is booked 0.5 s out; a 0.2 s deadline means the later
        # arrival is guaranteed late — shed immediately, not queued.
        net, c, s, trace, server = small_net(
            workers=1, base_cpu_s=0.5, request_deadline=0.2)
        client = OpenLoopClient(net, c, s.address,
                                arrivals([0.0, 0.05]))
        client.start()
        net.run(until=3.0)
        assert server.shed == 1
        assert server.expired == 0
        assert len(client.completed) == 1

    def test_deadline_expiry_at_dequeue(self):
        # Each request costs 0.5 s of serial CPU and the deadline is
        # 0.8 s: the second queues legitimately (0.5 s of queue ahead),
        # but the third and fourth wait ~1.0/1.5 s — expired when a
        # worker finally picks them up.
        net, c, s, trace, server = small_net(
            workers=1, base_cpu_s=0.5, request_deadline=0.8)
        client = OpenLoopClient(net, c, s.address,
                                arrivals([0.0, 0.01, 0.02, 0.03]),
                                request_timeout=5.0)
        client.start()
        net.run(until=4.0)
        assert server.expired >= 1
        assert server.requests_served >= 2
        assert net.obs.metrics.counter(
            "http.server.expired_total").value == server.expired

    def test_expired_requests_charge_no_cpu(self):
        net, c, s, trace, server = small_net(
            workers=1, base_cpu_s=0.5, request_deadline=0.8)
        client = OpenLoopClient(net, c, s.address,
                                arrivals([0.0, 0.01, 0.02, 0.03]),
                                request_timeout=5.0)
        client.start()
        net.run(until=4.0)
        served = server.requests_served
        # only the served requests consumed serial CPU time
        assert server._cpu_busy_until <= served * 0.51 + 0.1

    def test_unbounded_defaults_never_shed(self):
        net, c, s, trace, server = small_net(workers=1, base_cpu_s=0.2)
        client = OpenLoopClient(net, c, s.address,
                                arrivals([0.0, 0.01, 0.02, 0.03]),
                                request_timeout=10.0)
        client.start()
        net.run(until=5.0)
        assert server.shed == 0
        assert server.expired == 0
        assert len(client.completed) == 4


class TestSynBacklog:
    def test_syn_queue_overflow_drops(self):
        net = Network(seed=9)
        atk = net.add_host("atk")  # no TCP stack: SYNs never complete
        s = net.add_host("s")
        net.link(atk, s, bandwidth=100e6)
        net.finalize()
        trace = one_doc_trace()
        server = HttpServer(net, s, trace.sizes, syn_backlog=2)
        for k in range(6):
            net.sim.at(0.01 + 0.001 * k,
                       lambda k=k: atk.ip_send(
                           tcp_packet(atk.address, s.address,
                                      10_000 + k, server.port,
                                      syn=True, seq=k)))
        net.run(until=0.5)
        stack = net.tcp(s)
        # 2 half-open slots pinned by the first SYNs, the rest dropped
        assert stack.syn_backlog_drops == 4
        assert stack.stats_dict()["syn_backlog_drops"] == 4

    def test_real_client_survives_bounded_backlog(self):
        net, c, s, trace, server = small_net(syn_backlog=2)
        worker = HttpClientWorker(net, c, s.address, trace)
        worker.start()
        net.run(until=1.0)
        assert worker.completed
        assert net.tcp(s).syn_backlog_drops == 0


class TestClientRetry:
    def test_connect_failure_retries_then_abandons(self):
        # The server host has a TCP stack but nothing listening on 80:
        # every connection attempt is refused.
        net = Network(seed=9)
        c = net.add_host("c")
        s = net.add_host("s")
        net.link(c, s, bandwidth=100e6)
        net.finalize()
        net.tcp(s)  # stack up, port closed -> RST
        worker = HttpClientWorker(net, c, s.address, one_doc_trace(),
                                  max_retries=2, retry_delay=0.05,
                                  retry_ceiling=0.2)
        worker.start()
        net.run(until=5.0)
        assert not worker.completed
        assert worker.abandoned >= 2
        # per abandoned entry: max_retries retries then one abandonment
        assert worker.retries >= 2 * (worker.abandoned - 1)
        assert worker.failures >= worker.retries
        assert net.obs.metrics.counter(
            "http.client.abandoned_total").value == worker.abandoned
        assert net.obs.metrics.counter(
            "http.client.retries_total").value == worker.retries

    def test_retry_reissues_same_entry(self):
        # Two-entry trace against a dead port, max_retries=1: entries
        # must be abandoned in order, one at a time — the retry re-runs
        # the same entry instead of silently skipping ahead.
        net = Network(seed=9)
        c = net.add_host("c")
        s = net.add_host("s")
        net.link(c, s, bandwidth=100e6)
        net.finalize()
        net.tcp(s)
        trace = Trace(entries=[TraceEntry("/a.html", 10),
                               TraceEntry("/b.html", 10)],
                      sizes={"/a.html": 10, "/b.html": 10})
        worker = HttpClientWorker(net, c, s.address, trace,
                                  max_retries=1, retry_delay=0.05)
        paths = []
        original = worker._next_request

        def spy():
            original()
            paths.append(worker._current_path)

        worker._next_request = spy
        worker.start()
        net.run(until=1.0)
        assert paths[0] == "/a.html"
        assert paths[1] == "/a.html"  # the retry, not /b.html
        assert "/b.html" in paths

    def test_shed_response_retried_until_success(self):
        # An admission controller that refuses bursts but refills: the
        # client sees 503s, backs off, and eventually completes.
        net, c, s, trace, server = small_net(
            admission=AdmissionController(rate=2.0, floor=2.0,
                                          burst=1.0))
        workers = [HttpClientWorker(net, c, s.address, trace,
                                    trace_offset=i, retry_delay=0.1)
                   for i in range(3)]
        for i, w in enumerate(workers):
            w.start(at=0.001 * i)
        net.run(until=10.0)
        assert sum(w.shed_responses for w in workers) > 0
        assert sum(len(w.completed) for w in workers) > 5
        shed = sum(w.shed_responses for w in workers)
        assert net.obs.metrics.counter(
            "http.client.shed_responses_total").value == shed

    def test_abandonment_moves_to_next_entry(self):
        net, c, s, trace, server = small_net(
            admission=AdmissionController(rate=1.0, floor=1.0,
                                          burst=1.0))
        worker = HttpClientWorker(net, c, s.address, trace,
                                  max_retries=0, retry_delay=0.05)
        worker.start()
        net.run(until=5.0)
        # max_retries=0: every 503 is an immediate abandonment, yet the
        # worker keeps making progress on later entries
        assert worker.abandoned > 0
        assert worker.retries == 0
        assert len(worker.completed) > 0

    def test_backoff_spreads_retries(self):
        net = Network(seed=9)
        c = net.add_host("c")
        s = net.add_host("s")
        net.link(c, s, bandwidth=100e6)
        net.finalize()
        net.tcp(s)
        worker = HttpClientWorker(net, c, s.address, one_doc_trace(),
                                  max_retries=6, retry_delay=0.1,
                                  retry_ceiling=1.0)
        starts = []
        original = worker._next_request

        def spy():
            starts.append(net.sim.now)
            original()

        worker._next_request = spy
        worker.start()
        net.run(until=3.0)
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert len(gaps) >= 4
        # exponential growth: later retry gaps dominate earlier ones
        assert max(gaps[2:]) > gaps[0] * 1.5
