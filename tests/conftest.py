"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.interp import Interpreter, RecordingContext
from repro.lang import parse, typecheck
from repro.net.addresses import HostAddr
from repro.net.packet import IpHeader, TcpHeader, UdpHeader

#: A minimal forwarding protocol used wherever "any valid program" works.
FORWARD_SRC = """\
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
"""


def check(source: str):
    """Parse + type check, returning the ProgramInfo."""
    return typecheck(parse(source))


def run_packet(source: str, packet: tuple, *, ps=None, ctx=None,
               channel: str = "network", overload: int = 0,
               repeat: int = 1):
    """Interpret ``repeat`` invocations of a channel on one packet.

    Returns (final_ps, final_ss, ctx)."""
    info = check(source)
    interp = Interpreter(info)
    if ctx is None:
        ctx = RecordingContext()
    decl = info.channels[channel][overload]
    if ps is None:
        from repro.interp.values import default_value

        ps = default_value(decl.protocol_state_type)
    ss = interp.initial_channel_state(decl, ctx)
    for _ in range(repeat):
        ps, ss = interp.run_channel(decl, ps, ss, packet, ctx)
    return ps, ss, ctx


def tcp_packet_value(src="10.0.1.1", dst="10.0.2.2", sport=5555,
                     dport=80, payload=b"x", **tcp_kwargs) -> tuple:
    return (IpHeader(src=HostAddr.parse(src), dst=HostAddr.parse(dst)),
            TcpHeader(src_port=sport, dst_port=dport, **tcp_kwargs),
            payload)


def udp_packet_value(src="10.0.1.1", dst="10.0.2.2", sport=5555,
                     dport=7000, payload=b"x") -> tuple:
    return (IpHeader(src=HostAddr.parse(src), dst=HostAddr.parse(dst)),
            UdpHeader(src_port=sport, dst_port=dport),
            payload)


@pytest.fixture
def ctx() -> RecordingContext:
    return RecordingContext()
