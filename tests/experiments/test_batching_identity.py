"""Regression: tier-3 batching must not show up in experiment records.

Batch-drain delivery changes *how* routers execute ASP code, never
*what* the experiments measure: the same scenarios at the same seeds
must produce byte-identical canonical records with batching on
(``ROUTER_BATCH_SIZE = 64``) and off (``0`` forces per-packet
delivery).  Batch-grouping telemetry is execution-strategy detail and
is excluded from the canonical record (see
``repro.experiments.result._is_batch_telemetry``).
"""

import json

import repro.net.node as node_mod
from repro.harness import Runner, Scenario
from repro.experiments.result import deterministic_metrics

SCENARIOS = [
    Scenario("ident/audio", "audio", {"duration": 2.0}, seed=7),
    Scenario("ident/http", "http",
             {"mode": "asp", "n_clients": 2, "duration": 3.0,
              "warmup": 1.0}, seed=3),
    Scenario("ident/mpeg", "mpeg", {"n_clients": 2, "duration": 3.0},
             seed=5),
]


def sweep_with_batch_size(batch_size):
    old = node_mod.ROUTER_BATCH_SIZE
    node_mod.ROUTER_BATCH_SIZE = batch_size
    try:
        return Runner(use_cache=False, workers=1).sweep(SCENARIOS)
    finally:
        node_mod.ROUTER_BATCH_SIZE = old


class TestBatchingByteIdentity:
    def test_records_byte_identical_on_vs_off(self):
        on = sweep_with_batch_size(64).records_by_name()
        off = sweep_with_batch_size(0).records_by_name()
        assert set(on) == set(off) == {s.name for s in SCENARIOS}
        for name in on:
            a = json.dumps(on[name], sort_keys=True,
                           separators=(",", ":")).encode()
            b = json.dumps(off[name], sort_keys=True,
                           separators=(",", ":")).encode()
            assert a == b, name


class TestBatchTelemetryFilter:
    def test_batch_counters_stripped_from_record(self):
        metrics = {
            "node.r.planp.fastpath_batches": 3,
            "node.r.planp.batched_packets": 170,
            "node.r.planp.batch_size.count": 3,
            "node.r.planp.batch_size.max": 64,
            "node.r.planp.packets_processed": 170,
            "node.b.delivered": 170,
        }
        kept = deterministic_metrics(metrics)
        assert "node.r.planp.packets_processed" in kept
        assert "node.b.delivered" in kept
        assert not any("batch" in key for key in kept)
