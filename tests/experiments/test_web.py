"""The web overload drill: cell behavior, defense counters, record
determinism through the harness, and the poisoned-shedder chaos path."""

import json

import pytest

from repro.experiments.web import WebResult, run_web_experiment
from repro.harness import Runner, Scenario, registry

SHORT = dict(duration=4.0, warmup=1.5, seed=17)


@pytest.fixture(scope="module")
def baseline():
    return run_web_experiment(attack="none", shedding=False, **SHORT)


@pytest.fixture(scope="module")
def syn_open():
    return run_web_experiment(attack="syn", shedding=False, **SHORT)


@pytest.fixture(scope="module")
def syn_shed():
    return run_web_experiment(attack="syn", shedding=True, **SHORT)


class TestCells:
    def test_baseline_serves_cleanly(self, baseline):
        assert baseline.goodput > 50
        assert baseline.figures["server_shed"] == 0
        assert baseline.figures["gateway_dropped"] == 0
        assert baseline.figures["good_abandoned"] == 0
        assert baseline.figures["healthy"] is True

    def test_syn_flood_collapses_open_cluster(self, baseline, syn_open):
        figs = syn_open.figures
        assert figs["flood_sent"] > 500
        # the bounded listen queue absorbs the flood's state cost...
        assert figs["syn_backlog_drops"] > 0
        # ...but the goods still lose: slots are pinned by half-open
        # connections the attackers never complete
        assert syn_open.goodput < 0.5 * baseline.goodput

    def test_shedding_restores_syn_goodput(self, baseline, syn_open,
                                           syn_shed):
        figs = syn_shed.figures
        # the gateway filter eats the flood before the victim sees it
        assert figs["gateway_dropped"] > 0.9 * figs["flood_sent"]
        assert syn_shed.goodput > 2 * syn_open.goodput
        assert syn_shed.goodput > 0.7 * baseline.goodput
        assert figs["trips"] == 0  # the defense itself stays healthy

    def test_elephant_shedding_starves_the_elephant(self):
        shed = run_web_experiment(attack="elephant", shedding=True,
                                  **SHORT)
        figs = shed.figures
        assert figs["gateway_dropped"] > 0
        # blocked mid-transfer, the elephants time out and give up
        # instead of monopolizing the serial CPU
        assert figs["attacker_completed"] <= 2
        assert shed.goodput > 0

    def test_flash_crowd_is_shed_not_crashed(self):
        shed = run_web_experiment(attack="flash", shedding=True,
                                  **SHORT)
        figs = shed.figures
        assert figs["server_shed"] > 0  # degradation engaged
        assert figs["crowd_shed"] > 0
        assert shed.goodput > 0  # and the goods survive

    def test_validates_attack_and_window(self):
        with pytest.raises(ValueError, match="attack"):
            run_web_experiment(attack="teardrop")
        with pytest.raises(ValueError, match="warmup"):
            run_web_experiment(duration=2.0, warmup=2.0)


class TestDeterminism:
    def test_sharded_record_byte_identical(self, syn_shed):
        sharded = run_web_experiment(attack="syn", shedding=True,
                                     shard_segments=2, **SHORT)
        assert sharded.to_json() == syn_shed.to_json()

    def test_repeat_run_byte_identical(self, syn_open):
        again = run_web_experiment(attack="syn", shedding=False,
                                   **SHORT)
        assert again.to_json() == syn_open.to_json()

    def test_segments_is_volatile(self):
        result = run_web_experiment(attack="none", shedding=False,
                                    shard_segments=2, duration=2.0,
                                    warmup=0.5, seed=17)
        assert "segments" not in result.record()["figures"]
        assert result.volatile()["segments"] == 2

    def test_parallel_harness_byte_identical(self):
        scenarios = [
            Scenario("web/t-open", "web",
                     {"attack": "syn", "shedding": False,
                      "duration": 3.0, "warmup": 1.0}, seed=17),
            Scenario("web/t-shed", "web",
                     {"attack": "syn", "shedding": True,
                      "duration": 3.0, "warmup": 1.0}, seed=17),
        ]
        serial = Runner(use_cache=False, workers=1).sweep(scenarios)
        parallel = Runner(use_cache=False, workers=2).sweep(scenarios)
        for name, record in serial.records_by_name().items():
            other = parallel.records_by_name()[name]
            assert json.dumps(record, sort_keys=True) \
                == json.dumps(other, sort_keys=True)


class TestRegistry:
    def test_registered_with_result_class(self):
        reg = registry.get("web")
        assert reg.result_cls is WebResult

    def test_run_scenario_stamps_params(self):
        scenario = Scenario("web/unit", "web",
                            {"attack": "none", "shedding": True,
                             "duration": 2.0, "warmup": 0.5,
                             "shard_segments": 2}, seed=17)
        result = registry.run(scenario)
        assert result.name == "web/unit"
        assert result.params["attack"] == "none"
        assert result.params["shard_segments"] == 2

    def test_record_rehydrates(self):
        result = run_web_experiment(attack="none", shedding=False,
                                    duration=2.0, warmup=0.5, seed=17)
        line = {"record": result.record(),
                "volatile": result.volatile()}
        back = registry.rehydrate(line)
        assert isinstance(back, WebResult)
        assert back.goodput == result.goodput
        assert back.record() == result.record()


class TestPoisonedShedder:
    def test_breaker_degrades_to_standard_ip(self):
        result = run_web_experiment(attack="syn", shedding=True,
                                    poison_at=2.0, duration=5.0,
                                    warmup=1.5, seed=17)
        figs = result.figures
        # the poisoned shedder trips the breaker and is quarantined...
        assert figs["trips"] >= 1
        assert figs["quarantines"] >= 1
        # ...the gateway degrades to standard IP instead of dying: the
        # drill completes and the goods still finish requests
        assert result.goodput > 0
        # half-open reinstall replaced the poisoned engine by the end
        assert figs["quarantined_at_end"] == 0
        assert figs["healthy"] is True

    def test_poisoned_drill_deterministic(self):
        kw = dict(attack="syn", shedding=True, poison_at=2.0,
                  duration=4.0, warmup=1.5, seed=17)
        assert run_web_experiment(**kw).to_json() \
            == run_web_experiment(**kw).to_json()
