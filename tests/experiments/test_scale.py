"""The scale experiment: execution-mode identity, the volatile
figure split, harness registration, and process-driver error paths."""

import pytest

from repro.experiments.scale import (ScaleResult, build_scale_net,
                                     run_scale_experiment, scale_until)
from repro.harness import registry
from repro.net.shard_proc import ShardError, run_sharded_processes

SMALL = dict(n_clusters=4, hosts_per_cluster=3, packets_per_host=4)


@pytest.fixture(scope="module")
def serial():
    return run_scale_experiment(seed=11, shard_segments=1, **SMALL)


class TestExecutionModes:
    def test_inline_sharded_records_byte_identical(self, serial):
        for segments in (2, 4):
            sharded = run_scale_experiment(seed=11,
                                           shard_segments=segments,
                                           **SMALL)
            assert sharded.to_json() == serial.to_json()

    def test_process_driver_reproduces_figures(self, serial):
        proc = run_scale_experiment(seed=11, shard_segments=2,
                                    driver="process", **SMALL)
        assert proc.record()["figures"] == serial.record()["figures"]
        assert proc.figures["delivery_sha256"] \
            == serial.figures["delivery_sha256"]

    def test_everything_sent_is_delivered(self, serial):
        assert serial.figures["sent"] > 0
        assert serial.figures["delivered"] == serial.figures["sent"]

    def test_unknown_driver_rejected(self):
        with pytest.raises(ValueError, match="driver"):
            run_scale_experiment(seed=11, driver="threads", **SMALL)


class TestResultShape:
    def test_execution_strategy_is_volatile(self, serial):
        sharded = run_scale_experiment(seed=11, shard_segments=2,
                                       **SMALL)
        record = sharded.record()
        for key in ("segments", "driver", "windows"):
            assert key not in record["figures"]
            assert key in sharded.volatile()
        assert sharded.volatile()["segments"] == 2

    def test_registered_in_harness(self):
        reg = registry.get("scale")
        assert reg.result_cls is ScaleResult
        result = reg.fn(seed=3, n_clusters=2, hosts_per_cluster=2,
                        packets_per_host=1)
        assert result.figures["delivered"] == 2


class TestBuilderValidation:
    def test_rejects_sharding_finer_than_clusters(self):
        with pytest.raises(ValueError, match="cluster"):
            build_scale_net(params=dict(n_clusters=2,
                                        hosts_per_cluster=2),
                            seed=0, shard_segments=3)

    def test_until_is_a_pure_function_of_params(self):
        assert scale_until(SMALL) == scale_until(dict(SMALL))


class TestProcessDriverErrors:
    def test_worker_failure_propagates_with_traceback(self):
        with pytest.raises(ShardError, match="shard worker failed"):
            run_sharded_processes(
                "repro.experiments.scale:no_such_builder",
                params=SMALL, seed=0, segments=2,
                until=scale_until(SMALL))

    def test_explicit_until_required(self):
        with pytest.raises(ShardError, match="until"):
            run_sharded_processes(
                "repro.experiments.scale:build_scale_net",
                params=SMALL, seed=0, segments=2, until=None)
