"""The determinism contract: records are pure functions of
(code, params, seed), whichever process produced them."""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness import Runner, Scenario
from repro.harness.runner import run_scenario_line

# Cheap parameterizations drawn from every experiment family that the
# parallel runner fans out (kept tiny: each example runs a full sweep
# twice, serially and through a process pool).
POOL = [
    ("audio", {"duration": 2.0}),
    ("audio", {"duration": 2.0, "adaptation": False}),
    ("mpeg", {"n_clients": 2, "duration": 3.0}),
    ("microbench", {"engine": "closure", "n_packets": 300}),
    ("audio_gap_sweep", {"load_levels_bps": [1_900_000],
                         "duration": 2.0}),
]


def scenarios_from(picks, seed):
    return [Scenario(name=f"case{i}", experiment=exp, params=params,
                     seed=seed + i)
            for i, (exp, params) in enumerate(picks)]


class TestSameSeedSameRecord:
    def test_line_is_reproducible(self):
        scenario = Scenario("s", "audio", {"duration": 2.0}, seed=13)
        a = run_scenario_line(scenario)
        b = run_scenario_line(scenario)
        assert a["record"] == b["record"]
        assert a["cache_key"] == b["cache_key"]
        assert json.dumps(a["record"], sort_keys=True) \
            == json.dumps(b["record"], sort_keys=True)

    def test_different_seed_different_record(self):
        base = {"duration": 2.0, "constant_load_bps": 1_600_000}
        a = run_scenario_line(Scenario("s", "audio", base, seed=1))
        b = run_scenario_line(Scenario("s", "audio", base, seed=2))
        assert a["record"] != b["record"]
        assert a["cache_key"] != b["cache_key"]


class TestSerialParallelEquivalence:
    def test_fixed_matrix_byte_identical(self):
        scenarios = scenarios_from(POOL[:3], seed=7)
        serial = Runner(use_cache=False, workers=1).sweep(scenarios)
        parallel = Runner(use_cache=False, workers=2).sweep(scenarios)
        assert serial.records_by_name() == parallel.records_by_name()
        for name, record in serial.records_by_name().items():
            other = parallel.records_by_name()[name]
            assert json.dumps(record, sort_keys=True).encode() \
                == json.dumps(other, sort_keys=True).encode()

    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(picks=st.lists(st.sampled_from(POOL), min_size=2,
                          max_size=3),
           seed=st.integers(min_value=0, max_value=99))
    def test_random_small_matrices(self, picks, seed):
        scenarios = scenarios_from(picks, seed)
        serial = Runner(use_cache=False, workers=1).sweep(scenarios)
        parallel = Runner(use_cache=False, workers=2).sweep(scenarios)
        assert serial.records_by_name() == parallel.records_by_name()

    def test_parallel_store_rehydrates_to_serial_json(self, tmp_path):
        from repro.harness import ResultStore, rehydrate

        scenarios = scenarios_from(POOL[:2], seed=21)
        store = ResultStore(tmp_path)
        Runner(store, workers=2, use_cache=False).sweep(scenarios)
        direct = {s.name: run_scenario_line(s)["record"]
                  for s in scenarios}
        for line in store.load():
            assert rehydrate(line).record() == direct[line["scenario"]]
