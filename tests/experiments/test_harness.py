"""Tests for the experiment harness helpers themselves."""

import pytest

from repro.experiments import (BRIDGE_ASP, fig3_codegen_table,
                               format_fig3_table, make_bridge_packets,
                               run_engine_microbench)
from repro.experiments.fig3 import PAPER_PROGRAMS
from repro.jit.pipeline import count_source_lines


class TestFig3Harness:
    def test_table_has_all_five_programs(self):
        rows = fig3_codegen_table(repeats=2)
        assert len(rows) == 5
        names = {r.name for r in rows}
        assert "MPEG (monitor)" in names

    def test_rows_carry_paper_numbers(self):
        rows = fig3_codegen_table(repeats=1)
        by_name = {r.name: r for r in rows}
        assert by_name["Extensible Web Server"].paper_lines == 91
        assert by_name["Extensible Web Server"].paper_codegen_ms == 15.3

    def test_line_counts_match_sources(self):
        rows = fig3_codegen_table(repeats=1)
        for row in rows:
            source = PAPER_PROGRAMS[row.name][0]
            assert row.lines == count_source_lines(source)

    def test_format_produces_one_line_per_program(self):
        rows = fig3_codegen_table(repeats=1)
        text = format_fig3_table(rows)
        assert len(text.splitlines()) == 2 + len(rows)

    def test_count_source_lines_skips_comments_and_blanks(self):
        assert count_source_lines("-- c\n\nval x : int = 1\n") == 1


class TestMicrobenchHarness:
    def test_packets_cycle_flows(self):
        packets = make_bridge_packets(n_flows=4)
        assert len(packets) == 4
        assert len({p[0].src for p in packets}) == 4

    @pytest.mark.parametrize("engine", ["interpreter", "closure",
                                        "source", "builtin"])
    def test_all_engines_run(self, engine):
        result = run_engine_microbench(engine=engine, n_packets=500)
        assert result.packets == 500
        assert result.us_per_packet > 0
        assert result.packets_per_second > 0

    def test_seed_accepted_for_harness_uniformity(self):
        result = run_engine_microbench(engine="builtin", n_packets=100,
                                       seed=5)
        assert result.packets == 100

    def test_bridge_asp_verifies(self):
        from repro.analysis import verify_report
        from repro.lang import parse, typecheck

        report = verify_report(typecheck(parse(BRIDGE_ASP)))
        assert report.passed

    def test_builtin_and_asp_account_identically(self):
        """The 'C' baseline really computes the same function."""
        from repro.experiments.microbench import (_NullContext,
                                                  builtin_bridge)
        from repro.interp import Interpreter
        from repro.interp.values import PlanPTable
        from repro.lang import parse, typecheck

        packets = make_bridge_packets(n_flows=3)
        info = typecheck(parse(BRIDGE_ASP))
        interp = Interpreter(info)
        ctx = _NullContext()
        decl = info.channels["network"][0]
        ps_asp, ss = 0, interp.initial_channel_state(decl, ctx)
        table = PlanPTable(1024)
        ps_builtin = 0
        for i in range(30):
            packet = packets[i % 3]
            ps_asp, ss = interp.run_channel(decl, ps_asp, ss, packet,
                                            ctx)
            ps_builtin = builtin_bridge(ctx, table, ps_builtin, packet)
        assert ps_asp == ps_builtin == 30
        for key, count in table._entries.items():
            assert ss.get(key) == count


class TestReportGenerator:
    def test_quick_report_contains_all_sections(self):
        from repro.experiments.report import QUICK, generate

        text = generate(QUICK, only=["fig3", "microbench"])
        assert "Figure 3" in text
        assert "engine microbenchmark" in text
        assert "| program |" in text

    def test_main_only_flag(self, capsys, tmp_path):
        from repro.experiments.report import main

        assert main(["--quick", "--only", "fig3",
                     "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Figure 8" not in out

    def test_mpeg_section_formats_stored_results(self):
        from repro.experiments.report import QUICK, section_mpeg
        from repro.harness import Runner, report_matrix

        runner = Runner()
        results = {s.name: runner.run(s) for s in report_matrix(QUICK)
                   if s.name.startswith("quick/mpeg/")}
        text = section_mpeg(results, QUICK)
        assert "server sessions" in text

    def test_no_run_fails_without_store(self, tmp_path):
        from repro.experiments.report import QUICK, generate
        from repro.harness import ResultStore

        with pytest.raises(RuntimeError, match="no stored records"):
            generate(QUICK, only=["fig6"],
                     store=ResultStore(tmp_path), run_missing=False)

    def test_no_run_reads_same_content_under_other_name(self, tmp_path):
        """--no-run resolves by content: a record swept under another
        matrix's name satisfies the report scenario with equal params."""
        from repro.experiments.report import QUICK, generate
        from repro.harness import (ResultStore, Runner, Scenario,
                                   report_matrix)

        fig3 = next(s for s in report_matrix(QUICK)
                    if s.name == "quick/fig3")
        store = ResultStore(tmp_path)
        Runner(store).run(Scenario("elsewhere/fig3", fig3.experiment,
                                   fig3.params, seed=fig3.seed))
        text = generate(QUICK, only=["fig3"], store=store,
                        run_missing=False)
        assert "Figure 3" in text
