"""The Scenario API: keys, registry, cache, store, runner, CLI."""

import json

import pytest

from repro.experiments.result import ExperimentResult
from repro.harness import (ResultStore, Runner, Scenario, cache_key,
                           filter_scenarios, matrix, names, rehydrate,
                           smoke_matrix, standard_matrix)
from repro.harness import cache as cache_mod
from repro.harness import registry


class CountingResult(ExperimentResult):
    _EXPERIMENT = "_counting"
    _PARAM_FIELDS = ("knob",)


@pytest.fixture
def counting_experiment():
    """A registered throwaway experiment that counts invocations."""
    calls = []

    @registry.register("_counting", result_cls=CountingResult,
                       description="test double")
    def _run(*, seed, knob=1):
        calls.append((seed, knob))
        return CountingResult(params={"knob": knob}, seed=seed,
                              figures={"value": knob * 10})

    try:
        yield calls
    finally:
        registry._REGISTRY.pop("_counting", None)


class TestScenario:
    def test_key_is_stable_and_name_independent(self):
        a = Scenario("a", "audio", {"duration": 3.0}, seed=5)
        b = Scenario("b", "audio", {"duration": 3.0}, seed=5,
                     tags={"smoke"})
        assert a.key() == b.key()  # name/tags are presentation only

    def test_key_changes_with_params_and_seed(self):
        base = Scenario("s", "audio", {"duration": 3.0}, seed=5)
        assert base.key() != Scenario("s", "audio", {"duration": 4.0},
                                      seed=5).key()
        assert base.key() != Scenario("s", "audio", {"duration": 3.0},
                                      seed=6).key()

    def test_dict_roundtrip(self):
        s = Scenario("s", "mpeg", {"n_clients": 2}, seed=3,
                     tags={"smoke", "mpeg"})
        assert Scenario.from_dict(s.to_dict()) == s

    def test_filter_by_tag_and_name(self):
        scenarios = [Scenario("full/fig6", "audio", tags={"audio"}),
                     Scenario("full/fig8/asp", "http", tags={"http"})]
        assert [s.name for s in filter_scenarios(scenarios, "audio")] \
            == ["full/fig6"]
        assert [s.name for s in filter_scenarios(scenarios, "fig8")] \
            == ["full/fig8/asp"]
        assert len(filter_scenarios(scenarios, None)) == 2
        assert filter_scenarios(scenarios, "nope") == []


class TestRegistry:
    def test_every_experiment_is_registered(self):
        assert {"audio", "audio_gap_sweep", "http", "http_fig8_sweep",
                "mpeg", "images", "fig3", "microbench"} <= set(names())

    def test_unknown_experiment_is_a_keyerror(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            registry.get("bogus")

    def test_run_stamps_scenario_identity(self, counting_experiment):
        scenario = Scenario("my/run", "_counting", {"knob": 3}, seed=9)
        result = registry.run(scenario)
        assert result.name == "my/run"
        assert result.seed == 9
        assert result.params["knob"] == 3
        assert result.figures["value"] == 30
        assert counting_experiment == [(9, 3)]

    def test_rehydrate_uses_registered_result_class(
            self, counting_experiment):
        from repro.harness.runner import run_scenario_line

        line = run_scenario_line(
            Scenario("my/run", "_counting", {"knob": 2}, seed=1))
        result = rehydrate(line)
        assert isinstance(result, CountingResult)
        assert result.knob == 2  # legacy param attribute works


class TestCache:
    def test_cache_key_combines_scenario_and_code(self, monkeypatch):
        s = Scenario("s", "audio", {"duration": 3.0}, seed=5)
        before = cache_key(s)
        assert before == cache_key(s)
        monkeypatch.setattr(cache_mod, "_FINGERPRINT", "f" * 16)
        assert cache_key(s) != before  # code change invalidates

    def test_fingerprint_is_cached_per_process(self):
        assert cache_mod.code_fingerprint() \
            is cache_mod.code_fingerprint()


class TestStore:
    def line(self, name, key, value=1):
        return {"scenario": name, "experiment": "_counting", "seed": 0,
                "tags": [], "cache_key": key,
                "record": {"name": name, "figures": {"value": value}},
                "volatile": {}, "elapsed_s": 0.0}

    def test_append_and_load(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(self.line("a", "k1"))
        store.append(self.line("b", "k2"))
        assert len(store) == 2
        assert [l["scenario"] for l in store.load()] == ["a", "b"]
        assert set(store.by_cache_key()) == {"k1", "k2"}

    def test_jsonl_on_disk(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(self.line("a", "k1"))
        raw = (tmp_path / "results.jsonl").read_text().splitlines()
        assert len(raw) == 1
        assert json.loads(raw[0])["cache_key"] == "k1"

    def test_by_name_latest_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(self.line("a", "k1", value=1))
        store.append(self.line("a", "k2", value=2))
        assert store.by_name()["a"]["record"]["figures"]["value"] == 2

    def test_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "nowhere")
        assert store.load() == []
        assert len(store) == 0


class TestRunner:
    def test_run_caches_by_content(self, tmp_path, counting_experiment):
        store = ResultStore(tmp_path)
        scenario = Scenario("s", "_counting", {"knob": 2}, seed=1)
        runner = Runner(store)
        first = runner.run(scenario)
        second = runner.run(scenario)
        assert counting_experiment == [(1, 2)]  # second was a hit
        assert first.to_json() == second.to_json()

    def test_no_cache_forces_rerun(self, tmp_path, counting_experiment):
        store = ResultStore(tmp_path)
        scenario = Scenario("s", "_counting", {}, seed=1)
        Runner(store).run(scenario)
        Runner(store, use_cache=False).run(scenario)
        assert len(counting_experiment) == 2

    def test_sweep_resumes_partial_store(self, tmp_path,
                                         counting_experiment):
        store = ResultStore(tmp_path)
        scenarios = [Scenario(f"s{i}", "_counting", {"knob": i}, seed=1)
                     for i in range(4)]
        Runner(store).sweep(scenarios[:2])  # "killed" after two
        report = Runner(store).sweep(scenarios)
        assert sorted(report.cached) == ["s0", "s1"]
        assert sorted(report.ran) == ["s2", "s3"]
        assert len(counting_experiment) == 4  # nothing re-ran
        assert len(report.lines) == 4

    def test_sweep_dedupes_names(self, counting_experiment):
        scenario = Scenario("s", "_counting", {}, seed=1)
        report = Runner().sweep([scenario, scenario])
        assert len(report.lines) == 1

    def test_cache_hit_serves_requested_name(self, tmp_path,
                                             counting_experiment):
        """A hit for a same-content scenario under another name is
        relabeled to the requested identity (and lands in the store
        under it, so name-keyed loads work)."""
        store = ResultStore(tmp_path)
        runner = Runner(store)
        runner.run(Scenario("standard/s", "_counting", {"knob": 2},
                            seed=1))
        result = runner.run(Scenario("full/s", "_counting", {"knob": 2},
                                     seed=1, tags={"report"}))
        assert counting_experiment == [(1, 2)]  # second was a hit
        assert result.name == "full/s"
        by_name = store.by_name()
        assert by_name["full/s"]["record"]["name"] == "full/s"
        assert by_name["full/s"]["tags"] == ["report"]
        assert by_name["standard/s"]["record"]["name"] == "standard/s"

    def test_sweep_runs_same_key_scenarios_once(self, tmp_path,
                                                counting_experiment):
        """Two scenarios with identical cache keys in one sweep execute
        once; the duplicate is served from the first completion."""
        store = ResultStore(tmp_path)
        twins = [Scenario("standard/s", "_counting", {"knob": 2},
                          seed=1),
                 Scenario("full/s", "_counting", {"knob": 2}, seed=1)]
        report = Runner(store).sweep(twins)
        assert counting_experiment == [(1, 2)]  # ran exactly once
        assert report.ran == ["standard/s"]
        assert report.cached == ["full/s"]
        assert {line["scenario"]: line["record"]["name"]
                for line in report.lines} \
            == {"standard/s": "standard/s", "full/s": "full/s"}

    def test_progress_callback_sees_both_kinds(self, tmp_path,
                                               counting_experiment):
        seen = []
        store = ResultStore(tmp_path)
        scenario = Scenario("s", "_counting", {}, seed=1)
        runner = Runner(store,
                        progress=lambda kind, line: seen.append(kind))
        runner.sweep([scenario])
        runner.sweep([scenario])
        assert seen == ["ran", "cached"]


class TestMatrices:
    def test_known_matrices_resolve(self):
        for name in ("all", "standard", "smoke", "report-quick",
                     "report-full"):
            scenarios = matrix(name)
            assert scenarios, name
            assert len({s.name for s in scenarios}) == len(scenarios)

    def test_smoke_scenarios_are_tagged(self):
        assert all("smoke" in s.tags for s in smoke_matrix())

    def test_standard_matrix_covers_every_figure(self):
        scenario_names = {s.name for s in standard_matrix()}
        for suffix in ("fig3", "fig6", "fig7", "fig8/asp", "mpeg/asps",
                       "images", "microbench/closure"):
            assert f"standard/{suffix}" in scenario_names

    def test_all_experiments_in_matrices_are_registered(self):
        registered = set(names())
        for s in matrix("all"):
            assert s.experiment in registered


class TestRunxCli:
    def test_list_shows_matrix(self, capsys):
        from repro.tools.runx import main

        assert main(["list", "--matrix", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "smoke/microbench-builtin" in out

    def test_sweep_then_require_cached(self, tmp_path, capsys):
        from repro.tools.runx import main

        argv = ["sweep", "--matrix", "smoke", "--filter", "microbench",
                "--results", str(tmp_path)]
        assert main(argv) == 0
        summary = json.loads((tmp_path / "sweep.json").read_text())
        assert len(summary["ran"]) == 2 and summary["cached"] == []

        assert main(argv + ["--require-cached"]) == 0
        summary = json.loads((tmp_path / "sweep.json").read_text())
        assert summary["ran"] == [] and len(summary["cached"]) == 2

    def test_require_cached_fails_on_cold_store(self, tmp_path):
        from repro.tools.runx import main

        assert main(["sweep", "--matrix", "smoke", "--filter",
                     "microbench", "--results",
                     str(tmp_path / "cold"), "--require-cached"]) == 1

    def test_run_by_name_prints_json(self, tmp_path, capsys):
        from repro.tools.runx import main

        assert main(["run", "smoke/microbench-builtin", "--results",
                     str(tmp_path), "--json"]) == 0
        out = capsys.readouterr().out
        record = json.loads(out.splitlines()[-1])
        assert record["experiment"] == "microbench"

    def test_run_unknown_name_errors(self, tmp_path, capsys):
        from repro.tools.runx import main

        assert main(["run", "no/such", "--results",
                     str(tmp_path)]) == 2
