"""The unified ExperimentResult and the legacy compat shims."""

import json

import pytest

from repro.apps.audio import run_audio_experiment, run_gap_sweep
from repro.apps.http import run_fig8_sweep, run_http_experiment
from repro.apps.mpeg import run_mpeg_experiment
from repro.experiments import run_engine_microbench
from repro.experiments.result import (ExperimentResult,
                                      deterministic_metrics, jsonify)


class TestUnifiedShape:
    def test_audio_result_has_unified_fields(self):
        result = run_audio_experiment(duration=3.0, seed=5)
        assert result.name == "audio"
        assert result.params["adaptation"] is True
        assert result.params["duration"] == 3.0
        assert result.seed == 5
        assert "silent_periods" in result.figures
        assert isinstance(result.metrics, dict)

    def test_legacy_attribute_access_still_works(self):
        result = run_audio_experiment(duration=3.0, seed=5)
        assert result.adaptation is True
        assert result.duration == 3.0
        assert result.silent_periods == result.figures["silent_periods"]
        assert result.frames_received > 0

    def test_unknown_attribute_raises(self):
        result = run_audio_experiment(duration=2.0, seed=5)
        with pytest.raises(AttributeError):
            result.no_such_field

    def test_http_legacy_surface(self):
        result = run_http_experiment(mode="single", n_clients=2,
                                     duration=3.0, warmup=1.0)
        assert result.mode == "single"
        assert result.n_clients == 2
        assert result.throughput_rps > 0
        assert 0 < result.balance_ratio <= 1.0

    def test_json_roundtrip_rehydrates_domain_objects(self):
        result = run_audio_experiment(duration=3.0, seed=5)
        loaded = type(result).from_json(result.to_json())
        assert loaded.to_json() == result.to_json()
        sample = loaded.bandwidth_series[0]
        assert hasattr(sample, "kbps")  # a BandwidthSample again
        assert loaded.dominant_quality_between(0, 3.0) \
            == result.dominant_quality_between(0, 3.0)
        assert set(loaded.quality_fractions) \
            == set(result.quality_fractions)

    def test_record_is_json_types_only(self):
        result = run_mpeg_experiment(n_clients=2, duration=4.0)
        json.dumps(result.record())  # must not raise

    def test_base_from_json_works_without_subclass(self):
        result = run_mpeg_experiment(n_clients=2, duration=4.0)
        base = ExperimentResult.from_json(result.to_json())
        assert base.figures["server_sessions"] \
            == result.server_sessions


class TestVolatileAndDeterminism:
    def test_codegen_ms_is_volatile(self):
        result = run_http_experiment(mode="asp", n_clients=2,
                                     duration=3.0, warmup=1.0)
        assert "codegen_ms" not in result.record()["figures"]
        assert result.volatile()["codegen_ms"] > 0
        assert result.codegen_ms is not None  # legacy access intact

    def test_microbench_elapsed_is_volatile(self):
        result = run_engine_microbench(engine="builtin", n_packets=200)
        assert "elapsed_s" not in result.record()["figures"]
        assert result.volatile()["elapsed_s"] > 0
        assert result.us_per_packet > 0

    def test_deterministic_metrics_drops_wall_clock(self):
        metrics = {"drops_total": 3, "global.jit.codegen_ms.sum": 1.2,
                   "asp.process_ms.mean": 0.5, "elapsed_ms": 9.1,
                   "sim.events_executed": 10, "node.a.packets_in": 7}
        kept = deterministic_metrics(metrics)
        assert kept == {"drops_total": 3, "sim.events_executed": 10,
                        "node.a.packets_in": 7}

    def test_deterministic_metrics_keeps_counts_and_ms_substrings(self):
        # *_ms.count is an event count, and names merely containing
        # "_ms" are not timers: both stay in the canonical record.
        metrics = {"asp.process_ms.count": 2, "asp.process_ms.sum": 1.0,
                   "asp.process_ms.min": 0.1, "asp.process_ms.max": 0.9,
                   "dropped_msgs": 5}
        assert deterministic_metrics(metrics) \
            == {"asp.process_ms.count": 2, "dropped_msgs": 5}

    def test_same_seed_same_json(self):
        a = run_audio_experiment(duration=3.0, seed=9,
                                 constant_load_bps=1_600_000)
        b = run_audio_experiment(duration=3.0, seed=9,
                                 constant_load_bps=1_600_000)
        assert a.to_json() == b.to_json()

    def test_jsonify_handles_nested_payloads(self):
        from dataclasses import dataclass

        @dataclass
        class Row:
            x: int

        doc = jsonify({"rows": [Row(1), Row(2)], "k": {3: (4, 5)},
                       "s": {2, 1}})
        assert doc == {"rows": [{"x": 1}, {"x": 2}],
                       "k": {"3": [4, 5]}, "s": [1, 2]}


class TestDeprecatedPositionalForms:
    def test_http_positional_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="mode=.*n_clients="):
            result = run_http_experiment("single", 2, duration=3.0,
                                         warmup=1.0)
        assert result.mode == "single"

    def test_gap_sweep_positional_warns(self):
        with pytest.warns(DeprecationWarning, match="load_levels_bps="):
            sweep = run_gap_sweep([1_900_000], duration=2.0)
        assert 1_900_000 in sweep

    def test_fig8_sweep_positional_warns(self):
        with pytest.warns(DeprecationWarning, match="client_counts="):
            curves = run_fig8_sweep([2], modes=("single",),
                                    duration=3.0)
        assert len(curves["single"]) == 1

    def test_microbench_positional_warns(self):
        with pytest.warns(DeprecationWarning, match="engine="):
            result = run_engine_microbench("builtin", 100)
        assert result.packets == 100

    def test_too_many_positionals_is_an_error(self):
        with pytest.raises(TypeError, match="positional"):
            run_gap_sweep([1], 2.0, "closure", 7, "extra")

    def test_positional_keyword_clash_is_an_error(self):
        with pytest.raises(TypeError, match="multiple values"):
            run_http_experiment("single", 2, mode="asp")
