"""Paired-program validation of the wire-compatibility checker.

Three things must hold, or the rollout gate's veto is theater:

* the signature mutator produces real, well-typed program pairs;
* the exchange oracle witnesses exactly the divergences a mixed
  fleet would see at the dispatch boundary;
* the campaign catches a *weakened* checker (injected via
  ``checker=``) — proving a clean run is not vacuous — while the real
  checker sustains zero false accepts.
"""

import json
import random
from pathlib import Path

import pytest

from repro.analysis.wire import (CompatReport, check_compatible,
                                 wire_summary)
from repro.fuzz import (derive_seed, exchange_divergences, gen_pair,
                        load_wire_case, minimize_wire_case,
                        mutate_overloads, run_pair_campaign,
                        run_wire_case)
from repro.fuzz.grammar import PACKET_TYPES
from repro.fuzz.pairs import pair_specs
from repro.lang import parse, typecheck
from repro.obs import Observability

WIRE_CORPUS = Path(__file__).parent / "corpus" / "wire"

FWD = ("channel network(ps : int, ss : unit, p : {pt}) is "
       "(OnRemote(network, p); (ps + 1, ss))")


def info_of(source: str):
    return typecheck(parse(source))


class TestMutateOverloads:
    def test_mutations_stay_well_typed(self):
        from repro.fuzz import gen_program
        for i in range(40):
            rng = random.Random(derive_seed(3, "mut", i))
            base = rng.sample(PACKET_TYPES, rng.randint(1, 3))
            mutated, desc = mutate_overloads(rng, base)
            assert len(set(mutated)) == len(mutated), desc
            source = gen_program(random.Random(1), overloads=mutated)
            info_of(source)  # must not raise

    def test_identity_possible_and_labeled(self):
        seen = set()
        for i in range(80):
            rng = random.Random(derive_seed(5, "mut", i))
            base = rng.sample(PACKET_TYPES, 2)
            mutated, desc = mutate_overloads(rng, base)
            seen.add(desc.split(" ")[0])
            if desc == "identity":
                assert mutated == base
        # all mutation families get exercised across seeds
        assert {"identity", "retype", "overload-add",
                "overload-drop"} <= seen

    def test_input_list_not_mutated_in_place(self):
        base = list(PACKET_TYPES[:3])
        snapshot = list(base)
        mutate_overloads(random.Random(0), base)
        assert base == snapshot


class TestGenPair:
    def test_pair_sources_typecheck(self):
        for i in range(20):
            rng = random.Random(derive_seed(9, "pair", i))
            source_a, source_b, mutation = gen_pair(rng)
            info_of(source_a)
            info_of(source_b)
            assert mutation

    def test_deterministic(self):
        a = gen_pair(random.Random(77))
        b = gen_pair(random.Random(77))
        assert a == b


class TestExchangeOracle:
    def test_identical_generations_never_diverge(self):
        src = FWD.format(pt="ip*udp*int*blob")
        info = info_of(src)
        ws = wire_summary(info)
        rng = random.Random(4)
        specs = pair_specs(rng, info, info, ws.emitted_to())
        assert specs
        assert exchange_divergences(info, info, specs) == []

    def test_field_retype_witnessed(self):
        info_a = info_of(FWD.format(pt="ip*udp*int*blob"))
        info_b = info_of(FWD.format(pt="ip*udp*host*blob"))
        specs = pair_specs(random.Random(4), info_a, info_b,
                           {"network"})
        assert exchange_divergences(info_a, info_b, specs)

    def test_tail_toggle_witnessed_at_boundary(self):
        info_a = info_of(FWD.format(pt="ip*tcp*int*int"))
        info_b = info_of(FWD.format(pt="ip*tcp*int*int*blob"))
        specs = pair_specs(random.Random(4), info_a, info_b,
                           {"network"})
        divs = exchange_divergences(info_a, info_b, specs)
        assert divs  # the +1-byte probe flips dispatch on one side

    def test_dead_tagged_channel_not_probed(self):
        base = FWD.format(pt="ip*udp*blob")
        dead = base + ("\nchannel probe(ps : int, ss : unit, "
                       "p : ip*udp*int*blob) is (ps, ss)")
        info_a, info_b = info_of(base), info_of(dead)
        live = (wire_summary(info_a).emitted_to()
                | wire_summary(info_b).emitted_to())
        specs = pair_specs(random.Random(4), info_a, info_b, live)
        assert all(s.channel is None for s in specs)
        assert exchange_divergences(info_a, info_b, specs) == []


class TestPairCampaign:
    def test_real_checker_sustains_zero_false_accepts(self):
        obs = Observability()
        report = run_pair_campaign(5, budget_s=0.0, min_pairs=40,
                                   obs=obs)
        assert report.ok
        assert report.false_accepts == 0
        assert report.pairs >= 40
        assert report.divergent > 0  # mutations really do diverge
        assert report.incompatible > 0 and report.compatible > 0
        counters = obs.metrics
        assert counters.counter("fuzz.wire_pairs").value == report.pairs
        assert counters.counter("fuzz.false_accepts").value == 0

    def test_weakened_checker_is_caught(self, tmp_path):
        """The non-vacuity drill: a checker that accepts everything
        must produce findings, minimized and saved as wire cases."""
        def blind(old, new):
            return CompatReport()

        obs = Observability()
        report = run_pair_campaign(5, budget_s=0.0, min_pairs=40,
                                   checker=blind, obs=obs,
                                   out_dir=tmp_path)
        assert not report.ok
        assert report.false_accepts > 0
        assert report.findings
        errors = obs.events.filter(kind="error")
        assert any(e.data.get("reason") == "false-accept"
                   for e in errors)
        for finding in report.findings:
            assert finding.case_path is not None
            case = load_wire_case(finding.case_path)
            # Replayed under the *real* checker the case is healthy:
            # still divergent, and flagged.
            verdict, divergences = run_wire_case(case)
            assert divergences
            assert not verdict.ok

    def test_partially_weakened_checker_is_caught(self):
        """A subtler break: a checker blind to tail-ness only."""
        def no_tail_check(old, new):
            report = check_compatible(old, new)
            report.reasons = [r for r in report.reasons
                              if r.kind != "tail-changed"]
            from repro.analysis.wire import Verdict
            report.verdict = (max(r.severity for r in report.reasons)
                              if report.reasons else Verdict.COMPATIBLE)
            return report

        report = run_pair_campaign(5, budget_s=0.0, min_pairs=300,
                                   max_pairs=300, minimize=False,
                                   checker=no_tail_check,
                                   obs=Observability())
        assert report.false_accepts > 0
        assert any("tail" in f.detail or "->" in f.mutation
                   for f in report.findings)

    def test_deterministic_given_seed(self):
        a = run_pair_campaign(21, budget_s=0.0, min_pairs=15,
                              minimize=False, obs=Observability())
        b = run_pair_campaign(21, budget_s=0.0, min_pairs=15,
                              minimize=False, obs=Observability())
        da, db = a.to_dict(), b.to_dict()
        da.pop("elapsed_s"), db.pop("elapsed_s")
        assert da == db

    def test_report_dict_shape(self):
        report = run_pair_campaign(9, budget_s=0.0, min_pairs=4,
                                   minimize=False, obs=Observability())
        doc = report.to_dict()
        assert set(doc) == {"seed", "elapsed_s", "pairs", "compatible",
                            "degraded", "incompatible", "divergent",
                            "false_accepts", "conservative_rejects",
                            "minimizer_steps", "ok", "findings"}


class TestWireCorpus:
    CASES = sorted(WIRE_CORPUS.glob("*.json"))

    def test_wire_corpus_is_not_empty(self):
        assert self.CASES, f"no committed wire cases under {WIRE_CORPUS}"

    @pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
    def test_case_still_divergent_and_flagged(self, path):
        case = load_wire_case(path)
        assert case["program_a"].strip() and case["program_b"].strip()
        report, divergences = run_wire_case(case)
        assert divergences, f"{path.name}: witness went stale"
        assert not report.ok, (
            f"{path.name}: checker no longer flags this divergence — "
            f"a wire-compat false accept regressed")

    def test_minimizer_preserves_divergence(self):
        case = load_wire_case(self.CASES[0])
        minimized, steps = minimize_wire_case(case)
        assert steps >= 1
        _, divergences = run_wire_case(minimized)
        assert divergences
        assert len(minimized["packets"]) <= len(case["packets"])


class TestFuzzxPairsCli:
    def test_pairs_reports_and_exits_zero(self, tmp_path, capsys):
        from repro.tools.fuzzx import main
        out = tmp_path / "report.json"
        code = main(["pairs", "--budget", "0", "--min-pairs", "8",
                     "--seed", "2", "--json", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["ok"] and doc["pairs"] >= 8
        stdout = capsys.readouterr().out
        assert json.loads(stdout)["pairs"] == doc["pairs"]

    def test_replay_dispatches_on_wire_kind(self, capsys):
        from repro.tools.fuzzx import main
        case = sorted(WIRE_CORPUS.glob("*.json"))[0]
        code = main(["replay", str(case)])
        assert code == 0
        assert "ok" in capsys.readouterr().out
