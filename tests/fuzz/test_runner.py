"""Campaign mechanics: seed derivation, report shape, obs counters,
and the fuzzx CLI's run subcommand."""

import json

from repro.fuzz import derive_seed, run_campaign
from repro.obs import Observability


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "program", 0) == derive_seed(1, "program", 0)

    def test_distinct_parts(self):
        seeds = {derive_seed(1, "program", i) for i in range(100)}
        assert len(seeds) == 100

    def test_fits_random_seed(self):
        s = derive_seed(7, "stream", 3, 1)
        assert 0 <= s < 2 ** 63


class TestRunCampaign:
    def test_small_campaign_is_clean_and_counted(self):
        obs = Observability()
        report = run_campaign(5, budget_s=0.0, min_pairs=20,
                              minimize=False, obs=obs)
        assert report.ok
        assert report.pairs >= 20
        assert report.programs >= 5
        assert report.streams == report.pairs
        assert obs.metrics.counter("fuzz.pairs").value == report.pairs
        assert obs.metrics.counter("fuzz.programs").value == report.programs
        assert obs.metrics.counter("fuzz.divergences").value == 0

    def test_deterministic_given_seed(self):
        a = run_campaign(21, budget_s=0.0, min_pairs=12,
                         minimize=False, obs=Observability())
        b = run_campaign(21, budget_s=0.0, min_pairs=12,
                         minimize=False, obs=Observability())
        assert a.to_dict()["pairs"] == b.to_dict()["pairs"]
        assert a.findings == b.findings == []

    def test_max_pairs_caps_work(self):
        report = run_campaign(3, budget_s=60.0, min_pairs=200,
                              max_pairs=8, minimize=False,
                              obs=Observability())
        assert report.pairs == 8

    def test_report_dict_shape(self):
        report = run_campaign(9, budget_s=0.0, min_pairs=4,
                              minimize=False, obs=Observability())
        doc = report.to_dict()
        assert set(doc) == {"seed", "elapsed_s", "programs", "streams",
                            "pairs", "divergences", "minimizer_steps",
                            "ok", "findings"}


class TestFuzzxCli:
    def test_run_reports_and_exits_zero(self, tmp_path, capsys):
        from repro.tools.fuzzx import main
        out = tmp_path / "report.json"
        code = main(["run", "--budget", "0", "--min-pairs", "8",
                     "--seed", "2", "--json", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["ok"] and doc["pairs"] >= 8
        stdout = capsys.readouterr().out
        assert json.loads(stdout)["pairs"] == doc["pairs"]

    def test_run_rejects_unknown_backend(self):
        from repro.tools.fuzzx import main
        import pytest
        with pytest.raises(SystemExit):
            main(["run", "--backends", "quantum"])
