"""The program grammar: well-typedness, determinism, and coverage.

The coverage tests are the rot guard the tentpole asks for: if the
language grows an AST node that neither generator emits, these fail —
in CI and at the start of every campaign — naming the missing node.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.fuzz.grammar import (GrammarCoverageError, _nodes_of,
                                ast_inventory, check_grammar_coverage,
                                gen_program)
from repro.lang import parse, typecheck
from ..strategies import programs


class TestGenProgram:
    def test_deterministic(self):
        a = gen_program(random.Random(99))
        b = gen_program(random.Random(99))
        assert a == b

    def test_distinct_across_seeds(self):
        sources = {gen_program(random.Random(s)) for s in range(20)}
        assert len(sources) > 15

    @pytest.mark.parametrize("seed", range(40))
    def test_well_typed(self, seed):
        source = gen_program(random.Random(seed))
        typecheck(parse(source))  # must not raise


class TestCoverage:
    def test_inventory_derives_from_ast(self):
        inventory = ast_inventory()
        # Spot-check node classes across both hierarchies; the exact
        # count tracks the language, not this test.
        assert {"IntLit", "Try", "Raise", "Proj", "UnOp",
                "ChannelDecl", "FunDecl", "ExceptionDecl"} <= inventory

    def test_grammar_covers_inventory(self):
        covered = check_grammar_coverage()
        assert covered >= ast_inventory()

    def test_coverage_check_detects_rot(self):
        # No seeds means nothing is covered: the check must not
        # silently pass on an empty sample.
        with pytest.raises(GrammarCoverageError):
            check_grammar_coverage(seeds=[])


class TestHypothesisStrategy:
    """tests/strategies.py is the other generator; it must keep pace
    with the language too."""

    def test_strategy_covers_inventory(self):
        seen: set[str] = set()

        @settings(max_examples=300, deadline=None, derandomize=True,
                  suppress_health_check=list(HealthCheck))
        @given(programs())
        def collect(src):
            typecheck(parse(src))
            seen.update(_nodes_of(src))

        collect()
        missing = ast_inventory() - seen
        assert not missing, (
            f"tests/strategies.py never generated {sorted(missing)}")
