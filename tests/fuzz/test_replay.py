"""The case-file protocol, the minimizer, and the acceptance drill:
an injected engine discrepancy must be caught by a campaign, shrunk by
the minimizer, and replayable from the emitted case file."""

import json

import pytest

from repro.fuzz import (case_specs, load_case, make_case, minimize_case,
                        run_campaign, run_case, save_case)
from repro.fuzz.streams import PacketSpec
from repro.obs import Observability

FORWARD = """\
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
"""


class TestCaseFiles:
    def test_save_load_roundtrip(self, tmp_path):
        specs = [PacketSpec(payload=b"\x01\x02"), PacketSpec(syn=True)]
        case = make_case(FORWARD, specs, seed=9, note="demo")
        path = save_case(case, tmp_path / "sub" / "case.json")
        again = load_case(path)
        assert again == case
        assert case_specs(again) == specs

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError):
            load_case(path)

    def test_run_case_on_healthy_program(self):
        case = make_case(FORWARD, [PacketSpec(payload=b"ok")] * 3)
        assert run_case(case).ok

    def test_minimize_keeps_passing_case_intact(self):
        """A case that does not fail must come back unchanged — a flaky
        finding must not be 'minimized' into noise."""
        case = make_case(FORWARD, [PacketSpec(payload=b"ok")] * 4)
        minimized, steps = minimize_case(case)
        assert minimized == case
        assert steps == 1  # the single verification run


class _OffByOne:
    """A deliberately wrong engine wrapper: ps drifts by one whenever a
    run commits an int protocol state."""

    def __init__(self, engine):
        self._engine = engine

    def initial_channel_state(self, decl, ctx):
        return self._engine.initial_channel_state(decl, ctx)

    def run_channel(self, decl, ps, ss, value, ctx):
        ps, ss = self._engine.run_channel(decl, ps, ss, value, ctx)
        if type(ps) is int:
            ps += 1
        return ps, ss


@pytest.fixture
def broken_closure_engine(monkeypatch):
    """Patch the oracle's engine factory so the closure backend is
    subtly wrong; the other backends stay honest."""
    from repro.fuzz import oracle as oracle_mod
    real = oracle_mod.make_engine

    def make_engine(info, backend, ctx):
        engine = real(info, backend, ctx)
        return _OffByOne(engine) if backend == "closure" else engine

    monkeypatch.setattr(oracle_mod, "make_engine", make_engine)
    return monkeypatch


class TestAcceptance:
    def test_injected_discrepancy_caught_minimized_replayable(
            self, tmp_path, broken_closure_engine):
        obs = Observability()
        # A generous time budget with a hard pair cap: the loop only
        # stops early once a finding exists, so the campaign keeps
        # searching past healthy programs until the bug bites.
        report = run_campaign(1234, budget_s=600.0, min_pairs=1,
                              max_pairs=60, streams_per_program=2,
                              out_dir=tmp_path, obs=obs)
        # Caught:
        assert not report.ok
        assert report.findings
        finding = report.findings[0]
        assert "ps" in finding.detail or "outcomes" in finding.detail
        assert obs.metrics.counter("fuzz.divergences").value > 0
        # Minimized:
        assert report.minimizer_steps > 0
        case = load_case(finding.case_path)
        assert len(case["packets"]) <= 2, (
            "an every-packet off-by-one should shrink to 1-2 packets")
        assert "minimized" in case["note"]
        # Replayable while the bug exists:
        result = run_case(case)
        assert not result.ok
        assert any(d.backend == "closure" for d in result.divergences)
        # ...and the same file passes once the bug is gone (the
        # committed-corpus contract):
        broken_closure_engine.undo()
        assert run_case(case).ok

    def test_replay_cli_detects_divergence(self, tmp_path,
                                           broken_closure_engine,
                                           capsys):
        from repro.tools.fuzzx import main
        case = make_case(FORWARD, [PacketSpec(payload=b"x")] * 2)
        path = save_case(case, tmp_path / "case.json")
        assert main(["replay", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out
        broken_closure_engine.undo()
        assert main(["replay", str(path)]) == 0
        assert "ok" in capsys.readouterr().out
