"""The committed regression corpus.

Every case under ``tests/fuzz/corpus/`` pins an adversarial
(program, stream) scenario — found by campaigns or distilled from
hardening work — and must replay with zero divergences on every
engine×mode combination, forever.  A failure here means a regression
in an engine, the codec, or the containment path.
"""

from pathlib import Path

import pytest

from repro.fuzz import load_case, run_case

CORPUS = Path(__file__).parent / "corpus"
CASES = sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    assert CASES, f"no committed cases under {CORPUS}"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_replays_clean(path):
    case = load_case(path)
    assert case["program"].strip(), path
    assert case["packets"], path
    result = run_case(case)
    assert result.ok, (
        f"{path.name}: {'; '.join(f'{d.backend}/{d.mode}: {d.detail}' for d in result.divergences)}")
