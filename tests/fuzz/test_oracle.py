"""The differential oracle: trace capture, containment mirroring, and
divergence detection (including uncontained-crash reporting)."""

import random

from repro.fuzz import compare_all, gen_stream, run_trace
from repro.fuzz.grammar import gen_program
from repro.fuzz.oracle import MODES, _Runner, canon
from repro.fuzz.streams import PacketSpec
from repro.interp.values import UNIT, PlanPList, PlanPTable
from repro.lang import parse, typecheck

FORWARD = """\
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
"""

TWO_INTS = """\
channel network(ps : int, ss : unit, p : ip*tcp*int*int) is
  ((ps + (#3 p)) / (#4 p), ss)
"""


def _info(source):
    return typecheck(parse(source))


class TestCanon:
    def test_bool_is_not_int(self):
        assert canon(True) != canon(1)

    def test_tables_compare_structurally(self):
        a, b = PlanPTable(4), PlanPTable(4)
        a.put(1, "x")
        b.put(1, "x")
        assert a != b  # identity semantics in the language...
        assert canon(a) == canon(b)  # ...structural in the oracle

    def test_insertion_order_matters(self):
        a, b = PlanPTable(4), PlanPTable(4)
        a.put(1, "x")
        a.put(2, "y")
        b.put(2, "y")
        b.put(1, "x")
        assert canon(a) != canon(b)

    def test_lists_and_unit(self):
        assert canon(PlanPList((1, 2))) == ("list", (1, 2))
        assert canon(UNIT) == canon(UNIT)


class TestTraces:
    def test_ok_outcomes_and_state(self):
        specs = [PacketSpec(payload=b"hi")] * 3
        trace = run_trace(_info(FORWARD), "interpreter", "serial", specs)
        assert trace.outcomes == ("ok", "ok", "ok")
        assert trace.ps == 3
        assert len(trace.emissions) == 3
        assert trace.crash is None

    def test_truncated_packet_not_dispatched(self):
        # 7 bytes cannot satisfy the 8-byte fixed layout: admission
        # (the layer's front door) rejects it before decode runs.
        specs = [PacketSpec(payload=b"\x00" * 7)]
        trace = run_trace(_info(TWO_INTS), "interpreter", "serial", specs)
        assert trace.outcomes == ("pass",)

    def test_runtime_containment_commits_nothing(self):
        good = (1).to_bytes(4, "big") + (1).to_bytes(4, "big")
        bad = (1).to_bytes(4, "big") + (0).to_bytes(4, "big")
        trace = run_trace(_info(TWO_INTS), "interpreter", "serial",
                          [PacketSpec(payload=good),
                           PacketSpec(payload=bad),
                           PacketSpec(payload=good)])
        assert trace.outcomes == ("ok", "err:DivideByZero", "ok")
        assert trace.ps == 2  # (0+1)/1 then (1+1)/1... = 2

    def test_unmatched_packets_pass_through(self):
        specs = [PacketSpec(transport="udp", payload=b"x")]
        trace = run_trace(_info(FORWARD), "interpreter", "serial", specs)
        assert trace.outcomes == ("pass",)

    def test_batch_equals_serial_on_uniform_run(self):
        specs = [PacketSpec(payload=b"hello")] * 6
        info = _info(FORWARD)
        serial = run_trace(info, "closure", "serial", specs)
        batch = run_trace(info, "closure", "batch", specs)
        assert serial.diff(batch) is None

    def test_install_time_raise_is_contained(self):
        # The closure engine evaluates top-level vals eagerly; a
        # raising initializer must become an install outcome, not an
        # exception out of the oracle.
        source = "val k0 : int = 1 / 0\n" + FORWARD
        runner = _Runner(_info(source), "closure")
        assert runner.outcomes == ["install:DivideByZero"]
        assert runner.crash is None


class TestCompareAll:
    def test_engines_agree_on_forwarding(self):
        specs = [PacketSpec(payload=b"abc")] * 5
        result = compare_all(_info(FORWARD), specs)
        assert result.ok

    def test_engines_agree_on_generated_pairs(self):
        for seed in range(8):
            info = _info(gen_program(random.Random(seed)))
            specs = gen_stream(random.Random(seed), info, length=10)
            result = compare_all(info, specs)
            assert result.ok, result.divergences

    def test_uncontained_crash_is_reported(self, monkeypatch):
        """Even a unanimous leak (every engine crashes identically)
        must surface as a divergence — unanimity is not containment."""
        from repro.fuzz import oracle as oracle_mod
        real = oracle_mod.make_engine

        class Leaky:
            def __init__(self, engine):
                self._engine = engine

            def initial_channel_state(self, decl, ctx):
                return self._engine.initial_channel_state(decl, ctx)

            def run_channel(self, decl, ps, ss, value, ctx):
                raise RuntimeError("boom")

        monkeypatch.setattr(oracle_mod, "make_engine",
                            lambda info, backend, ctx:
                            Leaky(real(info, backend, ctx)))
        result = compare_all(_info(FORWARD),
                             [PacketSpec(payload=b"x")])
        assert not result.ok
        assert any("crash" in d.detail or "leak" in d.detail
                   for d in result.divergences)

    def test_modes_constant(self):
        assert MODES == ("serial", "batch")
