"""The adversarial stream generator and the PacketSpec protocol."""

import random

from repro.fuzz.grammar import gen_program
from repro.fuzz.streams import PacketSpec, gen_stream
from repro.lang import parse, typecheck
from repro.net.packet import PROTO_RAW, PROTO_TCP, PROTO_UDP, TcpHeader, UdpHeader


def _info(seed=3):
    return typecheck(parse(gen_program(random.Random(seed))))


class TestPacketSpec:
    def test_dict_roundtrip(self):
        spec = PacketSpec(transport="udp", sport=0, dport=65535,
                          payload=b"\x00\xff\x7f", channel="aux")
        assert PacketSpec.from_dict(spec.to_dict()) == spec

    def test_to_packet_transports(self):
        tcp = PacketSpec(transport="tcp", syn=True).to_packet()
        assert isinstance(tcp.transport, TcpHeader)
        assert tcp.transport.syn
        assert tcp.ip.proto == PROTO_TCP
        udp = PacketSpec(transport="udp").to_packet()
        assert isinstance(udp.transport, UdpHeader)
        assert udp.ip.proto == PROTO_UDP
        raw = PacketSpec(transport="raw").to_packet()
        assert raw.transport is None
        assert raw.ip.proto == PROTO_RAW

    def test_payload_hex_survives_json(self):
        import json
        spec = PacketSpec(payload=bytes(range(256)))
        again = PacketSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert again.payload == spec.payload


class TestGenStream:
    def test_deterministic(self):
        info = _info()
        a = gen_stream(random.Random(5), info)
        b = gen_stream(random.Random(5), info)
        assert a == b

    def test_requested_length(self):
        info = _info()
        for n in (1, 7, 12, 40):
            assert len(gen_stream(random.Random(1), info, length=n)) == n

    def test_contains_repetition_runs(self):
        """Across seeds, some stream must contain adjacent duplicates —
        the raw material for multi-row batches."""
        info = _info()
        found = False
        for seed in range(30):
            stream = gen_stream(random.Random(seed), info, length=12)
            if any(a == b for a, b in zip(stream, stream[1:])):
                found = True
                break
        assert found

    def test_contains_mutants(self):
        """Across seeds, payload lengths must stray from the valid
        shapes (truncations / stride breaks / oversized tails)."""
        info = _info()
        lengths = set()
        for seed in range(30):
            for spec in gen_stream(random.Random(seed), info, length=12):
                lengths.add(len(spec.payload))
        assert len(lengths) > 5
        assert any(n > 512 for n in lengths)  # oversized tails

    def test_mutation_rate_zero_is_all_valid(self):
        """With mutations off, every packet decodes on some overload
        of its channel (the valid-packet construction is really valid)."""
        from repro.runtime import codec
        info = _info()
        plans = {}
        for name, overloads in info.channels.items():
            tag = None if name == "network" else name
            plans.setdefault(tag, []).extend(
                codec.dispatch_plan(d.packet_type) for d in overloads)
        for seed in range(10):
            stream = gen_stream(random.Random(seed), info, length=8,
                                mutation_rate=0.0)
            for spec in stream:
                packet = spec.to_packet()
                assert any(
                    plan.transport_cls is type(packet.transport)
                    and plan.admits(len(packet.payload))
                    for plan in plans[spec.channel]), spec
