"""PLAN-P layer tests: installation, dispatch, emission, robustness."""

import pytest

from repro.lang import VerificationError
from repro.net import Network
from repro.net.packet import tcp_packet, udp_packet
from repro.runtime import Deployment, PlanPLayer

FORWARD = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
           "(OnRemote(network, p); (ps + 1, ss))")

COUNTING_UDP = (
    "channel network(ps : int, ss : unit, p : ip*udp*blob) is "
    "(OnRemote(network, p); (ps + 1, ss))")


def router_between():
    """a -- r -- b with a PLAN-P layer on r."""
    net = Network(seed=5)
    a = net.add_host("a")
    r = net.add_router("r")
    b = net.add_host("b")
    net.link(a, r)
    net.link(r, b)
    net.finalize()
    layer = PlanPLayer(r)
    return net, a, r, b, layer


class TestInstall:
    def test_install_compiles_and_initialises(self):
        net, a, r, b, layer = router_between()
        loaded = layer.install(FORWARD, backend="closure")
        assert layer.engine is loaded.engine
        assert layer.protocol_state == 0

    def test_install_rejects_unsafe_program(self):
        net, a, r, b, layer = router_between()
        bad = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
               "(OnRemote(network, p); OnRemote(network, p); (ps, ss))")
        with pytest.raises(VerificationError):
            layer.install(bad)
        assert layer.loaded is None

    def test_verify_false_bypasses(self):
        net, a, r, b, layer = router_between()
        bad = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
               "(OnRemote(network, p); OnRemote(network, p); (ps, ss))")
        layer.install(bad, verify=False)
        assert layer.loaded is not None

    def test_uninstall(self):
        net, a, r, b, layer = router_between()
        layer.install(FORWARD)
        layer.uninstall()
        packet = tcp_packet(a.address, b.address, 1, 80, b"x")
        assert not layer.wants(packet, None)

    @pytest.mark.parametrize("backend", ["interpreter", "closure",
                                         "source"])
    def test_all_backends_forward_traffic(self, backend):
        net, a, r, b, layer = router_between()
        layer.install(FORWARD, backend=backend)
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        a.ip_send(tcp_packet(a.address, b.address, 1, 80, b"x"))
        net.run()
        assert len(got) == 1
        assert layer.stats.packets_processed == 1


class TestDispatch:
    def test_unmatched_packets_use_standard_path(self):
        net, a, r, b, layer = router_between()
        layer.install(FORWARD)  # matches TCP only
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"u"))
        net.run()
        assert len(got) == 1
        assert layer.stats.packets_processed == 0
        assert r.stats.forwarded == 1

    def test_overload_dispatch_by_payload_shape(self):
        src = """
channel network(ps : int, ss : unit, p : ip*udp*host*int) is
  (deliver(p); (ps + 100, ss))
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
"""
        net, a, r, b, layer = router_between()
        layer.install(src)
        # 8-byte payload -> host*int overload; other sizes -> blob.
        a.ip_send(udp_packet(a.address, b.address, 1, 2, bytes(8)))
        a.ip_send(udp_packet(a.address, b.address, 1, 2, bytes(3)))
        net.run()
        assert layer.protocol_state == 101

    def test_channel_tagged_packet_dispatch(self):
        src = """
channel mine(ps : int, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps + 1, ss))
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(mine, p); (ps, ss))
"""
        net, a, r, b, layer = router_between()
        layer.install(src)
        layer_b = PlanPLayer(b)
        layer_b.install(src)
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"v"))
        net.run()
        # r tags the packet for 'mine'; b's layer dispatches to it.
        assert layer_b.protocol_state == 1
        assert b.stats.delivered == 1

    def test_promiscuous_host_sees_others_traffic(self):
        net = Network(seed=5)
        a, b, w = (net.add_host(n) for n in "abw")
        seg = net.segment("lan")
        for h in (a, b, w):
            net.attach(h, seg)
        net.finalize()
        watcher = PlanPLayer(w, promiscuous=True)
        watcher.install(COUNTING_UDP)
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        net.run()
        assert watcher.protocol_state == 1
        # The original still reaches b exactly once.
        assert b.stats.delivered == 1

    def test_non_promiscuous_host_does_not(self):
        net = Network(seed=5)
        a, b, w = (net.add_host(n) for n in "abw")
        seg = net.segment("lan")
        for h in (a, b, w):
            net.attach(h, seg)
        net.finalize()
        watcher = PlanPLayer(w)
        watcher.install(COUNTING_UDP)
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        net.run()
        assert watcher.protocol_state == 0


class TestRobustness:
    def test_runtime_error_falls_back_to_standard(self):
        # Unverified program that raises on every packet.
        src = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(OnRemote(network, p); (blobByte(#3 p, 999), ss))")
        net, a, r, b, layer = router_between()
        layer.install(src, verify=False)
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        a.ip_send(tcp_packet(a.address, b.address, 1, 80, b"x"))
        net.run()
        assert layer.stats.runtime_errors == 1
        assert len(got) == 1  # packet survived via standard forwarding

    def test_cpu_model_delays_processing(self):
        net, a, r, b, layer = router_between()
        layer.install(FORWARD)
        layer.cpu.per_item_s = 0.5
        arrivals = []
        b.delivery_taps.append(lambda p: arrivals.append(net.sim.now))
        for _ in range(3):
            a.ip_send(tcp_packet(a.address, b.address, 1, 80, b"x"))
        net.run()
        assert len(arrivals) == 3
        assert arrivals[-1] > 1.4  # three packets serialized at 0.5 s

    def test_console_output_captured(self):
        src = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               '(print("seen"); OnRemote(network, p); (ps, ss))')
        net, a, r, b, layer = router_between()
        layer.install(src)
        a.ip_send(tcp_packet(a.address, b.address, 1, 80, b"x"))
        net.run()
        assert layer.console == ["seen"]


class TestDeployment:
    def test_install_on_many_nodes(self):
        net, a, r, b, _layer = router_between()
        deployment = Deployment()
        record = deployment.install(FORWARD, [r, b], source_name="fw")
        assert record.nodes == ["r", "b"]
        assert set(record.codegen_ms) == {"r", "b"}
        assert record.report is not None and record.report.passed

    def test_rejected_program_touches_no_node(self):
        net, a, r, b, _layer = router_between()
        deployment = Deployment()
        bad = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
               "(OnRemote(network, p); OnRemote(network, p); (ps, ss))")
        with pytest.raises(VerificationError):
            deployment.install(bad, [r, b])
        assert r.planp.loaded is None

    def test_uninstall_all(self):
        net, a, r, b, _layer = router_between()
        deployment = Deployment()
        deployment.install(FORWARD, [r])
        deployment.uninstall([r])
        assert r.planp.loaded is None


class TestDecodeContainment:
    """Satellite regression: a malformed packet must never take the
    node down — decoding runs inside the containment try, the failure
    is counted as a runtime error with a ``decode`` reason, and the
    packet falls back to standard IP processing."""

    CHAR_VIEW = ("channel network(ps : int, ss : unit, "
                 "p : ip*tcp*char*blob) is "
                 "(OnRemote(network, p); (ps + 1, ss))")

    def test_truncated_payload_is_contained(self):
        net, a, r, b, layer = router_between()
        layer.install(self.CHAR_VIEW)
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        packet = tcp_packet(a.address, b.address, 1, 80, b"Q")
        # The packet is classified against its intact payload, then
        # corrupted in flight: by execution time the char view's byte
        # is gone.  Before the fix this IndexError escaped the layer
        # and crashed the node.
        assert layer.wants(packet, None)
        packet.payload = b""
        layer.process(packet, None)
        net.sim.run_until_idle()
        assert layer.stats.runtime_errors == 1
        assert layer.stats.packets_processed == 1
        assert len(got) == 1  # survived via standard forwarding
        assert r.up

    def test_decode_failure_reason_in_error_event(self):
        net, a, r, b, layer = router_between()
        layer.install(self.CHAR_VIEW)
        packet = tcp_packet(a.address, b.address, 1, 80, b"Q")
        assert layer.wants(packet, None)
        packet.payload = b""
        layer.process(packet, None)
        net.sim.run_until_idle()
        errors = [e for e in net.obs.events.filter(kind="error")]
        assert len(errors) == 1
        assert errors[0].data["reason"] == "decode"
        assert errors[0].node == "r"

    def test_codec_error_from_engine_is_contained(self):
        # A CodecError raised during channel execution (an unverified
        # program emitting an unencodable value) is not a PlanPError;
        # before the fix it escaped the runtime-error containment.
        from repro.runtime import codec

        class Exploding:
            def __init__(self, inner):
                self.inner = inner

            def initial_channel_state(self, decl, ctx):
                return self.inner.initial_channel_state(decl, ctx)

            def run_channel(self, *args):
                raise codec.CodecError("cannot encode table into payload")

        net, a, r, b, layer = router_between()
        layer.install(FORWARD)
        layer.engine = Exploding(layer.engine)
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        a.ip_send(tcp_packet(a.address, b.address, 1, 80, b"x"))
        net.run()
        assert layer.stats.runtime_errors == 1
        assert len(got) == 1
        errors = [e for e in net.obs.events.filter(kind="error")]
        assert errors and errors[0].data["reason"] == "runtime"

    def test_stale_deferred_classification_is_not_an_error(self):
        # With a CPU model, process() defers execution; if the program
        # is uninstalled in between, the stale packet gets standard
        # treatment and is NOT counted as a runtime error.
        net, a, r, b, layer = router_between()
        layer.install(FORWARD)
        layer.cpu.per_item_s = 0.5
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        a.ip_send(tcp_packet(a.address, b.address, 1, 80, b"x"))
        net.run(until=0.1)  # classified + queued behind the CPU
        layer.uninstall()
        net.run()
        assert layer.stats.runtime_errors == 0
        assert len(got) == 1
