"""Tier-3 batch path: error containment and telemetry.

A batch must never weaken the per-packet containment contract: one
malformed or faulting packet inside a 64-row batch is contained exactly
as it would be serially — the other 63 run through the ASP, the bad one
falls back to standard IP, the circuit breaker sees the same error
stream, and no struct-of-arrays state leaks into the next batch.
"""

import dataclasses

import repro.net.node as node_mod
from repro.net import Network
from repro.net.packet import tcp_packet
from repro.runtime import Deployment, PlanPLayer
from repro.runtime.lifecycle import LifecycleManager, LifecyclePolicy

BATCH = 64

FORWARD = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
           "(OnRemote(network, p); (ps + 1, ss))")

#: decodes a leading char, so an in-flight truncation breaks decode
CHAR_VIEW = ("channel network(ps : int, ss : unit, "
             "p : ip*tcp*char*blob) is "
             "(OnRemote(network, p); (ps + 1, ss))")

#: raises DivideByZero on empty payloads (unverifiable on purpose)
FAULT_ON_EMPTY = (
    "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
    "(let val q : int = ps / blobLen(#3 p) in "
    "(OnRemote(network, p); (ps + 1, ss)) end)")


def router_between(seed=5):
    net = Network(seed=seed)
    a = net.add_host("a")
    r = net.add_router("r")
    b = net.add_host("b")
    net.link(a, r)
    net.link(r, b)
    net.finalize()
    return net, a, r, b, PlanPLayer(r)


def burst(net, layer, packets):
    """Hand the layer a multi-packet arrival in ONE sim event — the
    only way real batches (> 1 row) form, since links serialize one
    packet per delivery event."""
    def fire():
        for p in packets:
            if layer.wants(p, None):
                layer.process(p, None)
            else:
                layer.node.standard_processing(p, None)
    net.sim.schedule(0.0, fire)
    net.sim.run_until_idle()


class TestMalformedRowContainment:
    def make_stream(self, a, b, n=BATCH, bad_at=21):
        packets = [tcp_packet(a.address, b.address, 1, 80, b"Q")
                   for _ in range(n)]
        self.bad = packets[bad_at]
        return packets

    def run_corrupted(self):
        net, a, r, b, layer = router_between()
        layer.install(CHAR_VIEW)
        packets = self.make_stream(a, b)
        got = []
        b.delivery_taps.append(lambda p: got.append(p))

        def fire():
            for p in packets:
                assert layer.wants(p, None)
                layer.process(p, None)
            # Classified with an intact payload, corrupted before the
            # drain runs: batch decode meets a byte that is not there.
            self.bad.payload = b""
        net.sim.schedule(0.0, fire)
        net.sim.run_until_idle()
        return net, r, layer, got

    def test_sixty_three_rows_survive_one_malformed(self):
        net, r, layer, got = self.run_corrupted()
        assert layer.stats.packets_processed == BATCH
        assert layer.stats.runtime_errors == 1
        assert layer.protocol_state == BATCH - 1  # ASP saw 63 rows
        assert len(got) == BATCH  # the bad one arrived via standard IP
        assert r.up

    def test_decode_reason_and_breaker_feed(self):
        net, r, layer, _got = self.run_corrupted()
        errors = list(net.obs.events.filter(kind="error"))
        assert len(errors) == 1
        assert errors[0].data["reason"] == "decode"
        assert errors[0].node == "r"

    def test_no_stale_soa_state_after_decode_fault(self):
        net, a, r, b, layer = router_between()
        layer.install(CHAR_VIEW)
        packets = self.make_stream(a, b)
        net.sim.schedule(0.0, lambda: [
            (layer.wants(p, None), layer.process(p, None))
            for p in packets])
        self.bad.payload = b""
        net.sim.run_until_idle()
        before = dataclasses.asdict(layer.stats)
        # A fresh, intact batch right after the fault must run clean
        # through the batch tier (not a degraded per-packet replay).
        clean = [tcp_packet(a.address, b.address, 1, 80, b"Q")
                 for _ in range(BATCH)]
        burst(net, layer, clean)
        after = layer.stats
        assert after.runtime_errors == before["runtime_errors"]
        assert after.fastpath_batches == before["fastpath_batches"] + 1
        assert after.batched_packets == before["batched_packets"] + BATCH


class TestRuntimeFaultMidBatch:
    def run_stream(self, batch_size):
        old = node_mod.ROUTER_BATCH_SIZE
        node_mod.ROUTER_BATCH_SIZE = batch_size
        try:
            net, a, r, b, layer = router_between()
            layer.install(FAULT_ON_EMPTY, verify=False)
            packets = [tcp_packet(a.address, b.address, 1, 80,
                                  b"" if i == 30 else b"pay")
                       for i in range(BATCH)]
            got = []
            b.delivery_taps.append(lambda p: got.append(p))
            burst(net, layer, packets)
            return layer, got
        finally:
            node_mod.ROUTER_BATCH_SIZE = old

    def test_faulting_row_matches_serial_exactly(self):
        batched, got_b = self.run_stream(BATCH)
        serial, got_s = self.run_stream(0)
        assert serial.stats.runtime_errors == 1
        assert len(got_s) == BATCH  # faulted packet standard-forwarded
        for field in ("packets_processed", "runtime_errors",
                      "packets_delivered", "packets_emitted"):
            assert getattr(batched.stats, field) \
                == getattr(serial.stats, field), field
        assert batched.protocol_state == serial.protocol_state
        assert len(got_b) == len(got_s)


class TestBreakerTripMidBatch:
    def run_stream(self, batch_size, bad_rows):
        old = node_mod.ROUTER_BATCH_SIZE
        node_mod.ROUTER_BATCH_SIZE = batch_size
        try:
            net, a, r, b, layer = router_between()
            deployment = Deployment()
            deployment.install(FAULT_ON_EMPTY, [r], verify=False)
            layer = r.planp
            policy = LifecyclePolicy(error_budget=2, budget_window=5.0)
            manager = LifecycleManager(net, deployment=deployment,
                                       policy=policy)
            manager.manage(r)
            packets = [tcp_packet(a.address, b.address, 1, 80,
                                  b"" if i in bad_rows else b"pay")
                       for i in range(BATCH)]
            got = []
            b.delivery_taps.append(lambda p: got.append(p))
            # The production arrival path (receive → wants → process)
            # in ONE event: it is receive() that counts asp_handled,
            # which the batch path must unwind on a mid-batch trip.
            net.sim.schedule(0.0, lambda: [r.receive(p, None)
                                           for p in packets])
            net.sim.run_until_idle()
            return r, layer, manager, got
        finally:
            node_mod.ROUTER_BATCH_SIZE = old

    def test_mid_batch_trip_matches_serial_accounting(self):
        bad = {10, 11, 12}  # third error bursts the budget of 2
        rb, lb, mb, got_b = self.run_stream(BATCH, bad)
        rs, ls, ms, got_s = self.run_stream(0, bad)
        assert mb.of(rb).breaker.trips == 1
        assert ms.of(rs).breaker.trips == 1
        assert len(got_b) == len(got_s) == BATCH  # nothing lost
        for field in ("packets_processed", "runtime_errors"):
            assert getattr(lb.stats, field) \
                == getattr(ls.stats, field), field
        # Packets behind the trip revert to plain IP in both modes —
        # the batch path must unwind its enqueue-time ASP accounting.
        assert rb.stats.asp_handled == rs.stats.asp_handled
        assert rb.stats.forwarded == rs.stats.forwarded


class TestBatchTelemetry:
    """Satellite: batch amortization is visible per node — counters on
    ``PlanPLayer.stats`` and a batch-size histogram in the metrics
    registry."""

    def test_counters_and_histogram_exposed(self):
        net, a, r, b, layer = router_between()
        layer.install(FORWARD)
        burst(net, layer,
              [tcp_packet(a.address, b.address, 1, 80, b"x")
               for _ in range(BATCH + 10)])
        assert layer.stats.fastpath_batches == 2  # 64 + 10
        assert layer.stats.batched_packets == BATCH + 10
        snap = net.metrics_snapshot(include_global=False)
        assert snap["node.r.planp.fastpath_batches"] == 2
        assert snap["node.r.planp.batched_packets"] == BATCH + 10
        assert snap["node.r.planp.batch_size.count"] == 2
        assert snap["node.r.planp.batch_size.max"] == BATCH

    def test_singletons_bypass_batch_machinery(self):
        net, a, r, b, layer = router_between()
        layer.install(FORWARD)
        a.ip_send(tcp_packet(a.address, b.address, 1, 80, b"x"))
        net.run()
        assert layer.stats.packets_processed == 1
        assert layer.stats.fastpath_batches == 0
        assert layer.stats.batched_packets == 0

    def test_batching_off_leaves_counters_at_zero(self):
        old = node_mod.ROUTER_BATCH_SIZE
        node_mod.ROUTER_BATCH_SIZE = 0
        try:
            net, a, r, b, layer = router_between()
            layer.install(FORWARD)
            burst(net, layer,
                  [tcp_packet(a.address, b.address, 1, 80, b"x")
                   for _ in range(8)])
            assert layer.stats.packets_processed == 8
            assert layer.stats.fastpath_batches == 0
        finally:
            node_mod.ROUTER_BATCH_SIZE = old
