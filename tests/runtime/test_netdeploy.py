"""Network-based ASP deployment tests (paper §5 extension)."""

import pytest

from repro.net import Network
from repro.net.packet import tcp_packet
from repro.runtime.netdeploy import (CHUNK_BYTES, DeploymentManager,
                                     DeploymentService)

FORWARD = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
           "(OnRemote(network, p); (ps + 1, ss))")

BAD = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
       "(OnRemote(network, p); OnRemote(network, p); (ps, ss))")


def managed_net(n_routers=1):
    net = Network(seed=41)
    admin = net.add_host("admin")
    routers = [net.add_router(f"r{i}") for i in range(n_routers)]
    endpoint = net.add_host("endpoint")
    previous = admin
    for router in routers:
        net.link(previous, router, bandwidth=100e6)
        previous = router
    net.link(previous, endpoint, bandwidth=100e6)
    net.finalize()
    services = [DeploymentService(net, r) for r in routers]
    manager = DeploymentManager(net, admin)
    return net, admin, routers, endpoint, services, manager


class TestPush:
    def test_single_node_install(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        xfer = manager.push(FORWARD, [routers[0].address])
        net.run(until=1.0)
        assert manager.all_ok(xfer)
        assert services[0].installed == [xfer]
        status = manager.status(xfer)[routers[0].address]
        assert status.codegen_ms is not None

    def test_installed_program_processes_traffic(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        manager.push(FORWARD, [routers[0].address])
        net.run(until=1.0)
        got = []
        endpoint.delivery_taps.append(lambda p: got.append(p))
        admin.ip_send(tcp_packet(admin.address, endpoint.address, 5, 80,
                                 b"x"))
        net.run(until=2.0)
        assert len(got) == 1
        assert routers[0].planp.stats.packets_processed == 1

    def test_multi_node_push(self):
        net, admin, routers, endpoint, services, manager = \
            managed_net(n_routers=3)
        xfer = manager.push(FORWARD,
                            [r.address for r in routers])
        net.run(until=1.0)
        assert manager.all_ok(xfer)
        assert all(s.installed == [xfer] for s in services)

    def test_multi_chunk_source(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        # Pad the program with comments so it spans several chunks.
        padding = "\n".join(f"-- padding line {i} {'x' * 60}"
                            for i in range(40))
        source = padding + "\n" + FORWARD
        assert len(source.encode()) > 2 * CHUNK_BYTES
        xfer = manager.push(source, [routers[0].address])
        net.run(until=1.0)
        assert manager.all_ok(xfer)


class TestRejection:
    def test_unsafe_program_rejected_remotely(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        xfer = manager.push(BAD, [routers[0].address])
        net.run(until=1.0)
        status = manager.status(xfer)[routers[0].address]
        assert status.ok is False
        assert "duplication" in status.detail or "exponential" in \
            status.detail
        assert services[0].rejected
        assert routers[0].planp.loaded is None

    def test_unsafe_program_with_privilege(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        xfer = manager.push(BAD, [routers[0].address], verify=False)
        net.run(until=1.0)
        assert manager.all_ok(xfer)

    def test_syntax_error_rejected(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        xfer = manager.push("channel oops(", [routers[0].address])
        net.run(until=1.0)
        status = manager.status(xfer)[routers[0].address]
        assert status.ok is False

    def test_commit_without_begin_rejected(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        sock = net.udp(admin).bind()
        replies = []
        sock.on_datagram = lambda d, s, p: replies.append(d)
        sock.sendto(routers[0].address, 9900, b"COMMIT ghost")
        net.run(until=1.0)
        assert replies and replies[0].startswith(b"REJ ghost")

    def test_incomplete_transfer_rejected(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        sock = net.udp(admin).bind()
        replies = []
        sock.on_datagram = lambda d, s, p: replies.append(d)
        sock.sendto(routers[0].address, 9900, b"BEGIN t1 3 closure 1")
        sock.sendto(routers[0].address, 9900, b"CHUNK t1 0\nval")
        sock.sendto(routers[0].address, 9900, b"COMMIT t1")
        net.run(until=1.0)
        # The reliable protocol acks the BEGIN and the chunk before
        # rejecting the incomplete commit.
        assert replies == [b"BEGACK t1", b"CACK t1 0",
                           b"REJ t1 incomplete (1/3)"]


class TestHardening:
    """Malformed control datagrams must never kill the receive path."""

    def raw_socket(self, net, admin):
        sock = net.udp(admin).bind()
        replies = []
        sock.on_datagram = lambda d, s, p: replies.append(d)
        return sock, replies

    def test_garbage_header_with_id_gets_rej(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        sock, replies = self.raw_socket(net, admin)
        sock.sendto(routers[0].address, 9900, b"BEGIN t9 zap closure 1")
        net.run(until=0.5)
        assert replies == [b"REJ t9 malformed"]
        assert services[0].malformed == 1

    def test_bad_chunk_index_rejected_not_fatal(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        sock, replies = self.raw_socket(net, admin)
        sock.sendto(routers[0].address, 9900, b"BEGIN t1 3 closure 1")
        sock.sendto(routers[0].address, 9900, b"CHUNK t1 -1\nxx")
        sock.sendto(routers[0].address, 9900, b"CHUNK t1 nope\nxx")
        sock.sendto(routers[0].address, 9900, b"CHUNK t1 99\nxx")
        net.run(until=0.5)
        assert replies == [b"BEGACK t1", b"REJ t1 malformed",
                           b"REJ t1 malformed", b"REJ t1 malformed"]
        assert services[0].malformed == 3

    def test_headerless_garbage_is_dropped_silently(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        sock, replies = self.raw_socket(net, admin)
        sock.sendto(routers[0].address, 9900, b"XYZZY")
        sock.sendto(routers[0].address, 9900, b"")
        net.run(until=0.5)
        assert replies == []
        assert services[0].malformed == 2

    def test_node_survives_garbage_then_installs_normally(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        sock, _replies = self.raw_socket(net, admin)
        for payload in (b"BEGIN x y z", b"CHUNK", b"COMMIT a b c",
                        b"\x00\xff garbage \n\n", b"BEGIN t 0 c 1"):
            sock.sendto(routers[0].address, 9900, payload)
        xfer = manager.push(FORWARD, [routers[0].address])
        net.run(until=1.0)
        assert manager.all_ok(xfer)
        assert services[0].installed == [xfer]


class TestReconfiguration:
    def test_push_replaces_previous_program(self):
        net, admin, routers, endpoint, services, manager = managed_net()
        counting = FORWARD
        dropping_udp = (
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(deliver(p); (ps + 10, ss))")
        manager.push(counting, [routers[0].address])
        net.run(until=1.0)
        first = routers[0].planp.loaded
        manager.push(dropping_udp, [routers[0].address])
        net.run(until=2.0)
        assert routers[0].planp.loaded is not first
        assert routers[0].planp.protocol_state == 0  # state reset
