"""Deployment under injected faults: loss, crashes, unreachable nodes.

The reliability contract under test: no push stays ``ok=None`` past its
deadline under any loss rate, recovery is observable through the
retry/loss counters, and a restarted node comes back running its ASP
set (re-installed from the service manifest through the program cache).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Network
from repro.runtime.netdeploy import (DeploymentManager, DeploymentService,
                                     RetryPolicy)

FORWARD = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
           "(OnRemote(network, p); (ps + 1, ss))")

COUNTER = ("channel network(ps : int, ss : unit, p : ip*udp*blob) is "
           "(OnRemote(network, p); (ps + 2, ss))")

#: A multi-chunk program: padding spreads it over several datagrams so
#: crashes land mid-transfer.
BIG = "\n".join(f"-- padding line {i} {'x' * 60}"
                for i in range(40)) + "\n" + FORWARD


def star_net(n_routers, seed, loss_rate=0.0):
    net = Network(seed=seed)
    admin = net.add_host("admin")
    routers = [net.add_router(f"r{i}") for i in range(n_routers)]
    for router in routers:
        net.link(admin, router, bandwidth=100e6, loss_rate=loss_rate)
    net.finalize()
    services = [DeploymentService(net, r) for r in routers]
    manager = DeploymentManager(net, admin)
    return net, routers, services, manager


class TestDeploymentUnderLoss:
    @settings(max_examples=12, deadline=None)
    @given(loss=st.floats(0.0, 0.5), seed=st.integers(0, 2 ** 16))
    def test_every_push_reaches_terminal_state(self, loss, seed):
        net, routers, services, manager = star_net(3, seed,
                                                   loss_rate=loss)
        xfer = manager.push(FORWARD, [r.address for r in routers])
        assert manager.await_converged(xfer)
        statuses = manager.status(xfer)
        deadline = max(s.deadline for s in statuses.values())
        assert net.now <= deadline + 0.1
        for status in statuses.values():
            # Terminal, always: OK or FAILED with a reason — never None.
            assert status.ok is not None
            if status.ok is False:
                assert status.detail in ("timeout", "unreachable")

    def test_lossless_push_needs_no_retries(self):
        net, routers, services, manager = star_net(3, seed=11)
        xfer = manager.push(FORWARD, [r.address for r in routers])
        assert manager.await_converged(xfer)
        assert manager.all_ok(xfer)
        counters = manager.counters(xfer)
        assert counters["retries"] == 0
        assert counters["restarts"] == 0

    def test_moderate_loss_converges_with_observable_retries(self):
        net, routers, services, manager = star_net(3, seed=12,
                                                   loss_rate=0.3)
        xfer = manager.push(BIG, [r.address for r in routers])
        assert manager.await_converged(xfer)
        assert manager.all_ok(xfer)
        counters = manager.counters(xfer)
        assert counters["retries"] > 0  # loss was repaired, visibly
        n_chunks = len(BIG.encode()) // 900 + 1
        assert counters["chunks_sent"] > 3 * n_chunks  # retransmissions

    def test_same_seed_same_outcome(self):
        def run(seed):
            net, routers, services, manager = star_net(
                3, seed, loss_rate=0.35)
            xfer = manager.push(BIG, [r.address for r in routers])
            manager.await_converged(xfer)
            return [(s.ok, s.detail, s.retries, s.restarts,
                     s.chunks_sent, s.late_acks)
                    for s in manager.status(xfer).values()]

        assert run(99) == run(99)


class TestDeadlines:
    def test_unreachable_target_fails_with_reason(self):
        net, routers, services, manager = star_net(2, seed=21)
        net.faults.crash(routers[0])
        xfer = manager.push(FORWARD, [r.address for r in routers],
                            policy=RetryPolicy(deadline=0.5))
        assert manager.await_converged(xfer)
        statuses = manager.status(xfer)
        assert statuses[routers[0].address].ok is False
        assert statuses[routers[0].address].detail == "unreachable"
        assert statuses[routers[1].address].ok is True

    def test_late_ok_does_not_resurrect_failed_push(self):
        # Deadline shorter than one protocol round trip: the push fails
        # by timeout, then the node's OK limps in — it must be counted,
        # not believed.
        # On this topology the COMMIT lands (and installs) at ~2.6 ms
        # and the OK returns at ~3.1 ms; a 2.8 ms deadline splits them.
        net, routers, services, manager = star_net(1, seed=22)
        xfer = manager.push(FORWARD, [routers[0].address],
                            policy=RetryPolicy(deadline=0.0028))
        net.run(until=1.0)
        status = manager.status(xfer)[routers[0].address]
        assert status.ok is False
        assert status.detail == "timeout"
        assert status.late_acks >= 1  # the OK (or acks) arrived late
        assert services[0].installed == [xfer]  # the node did install

    def test_repush_recovers_a_failed_push(self):
        from repro.jit.pipeline import load_program

        load_program(FORWARD)  # prime the content-addressed cache
        net, routers, services, manager = star_net(1, seed=23)
        xfer = manager.push(FORWARD, [routers[0].address],
                            policy=RetryPolicy(deadline=0.002))
        net.run(until=1.0)
        assert manager.status(xfer)[routers[0].address].ok is False
        repushed = manager.repush(xfer, policy=RetryPolicy())
        assert repushed == [routers[0].address]
        assert manager.await_converged(xfer)
        assert manager.all_ok(xfer)
        # The re-push re-verified through the content-addressed cache.
        assert manager.status(xfer)[routers[0].address].cache_hit is True


class TestCrashDrill:
    def drill(self, seed):
        """Crash a router mid-push, restart it 2 simulated seconds
        later; the push must still converge and the restarted node must
        come back running the same ASP set (per the manifest)."""
        net, routers, services, manager = star_net(2, seed)
        r0, r1 = routers
        s0, s1 = services

        first = manager.push(COUNTER, [r0.address, r1.address])
        assert manager.await_converged(first) and manager.all_ok(first)

        second = manager.push(BIG, [r0.address, r1.address])
        net.faults.at(net.now + 0.0015, net.faults.crash, "r0")
        net.faults.at(net.now + 2.0015, net.faults.restart, "r0")
        assert manager.await_converged(second)
        return net, (r0, r1), (s0, s1), manager, first, second

    def test_drill_converges_and_reinstalls(self):
        net, (r0, r1), (s0, s1), manager, first, second = self.drill(31)
        statuses = manager.status(second)
        assert all(s.terminal for s in statuses.values())
        assert manager.all_ok(second)
        # The crashed node's transfer restarted from BEGIN at least once.
        assert statuses[r0.address].restarts >= 1
        # On restart, the service replayed its manifest: the first ASP
        # was re-installed before the second push completed.
        assert s0.reinstalled == [first]
        # Both nodes end up with identical manifests (same hash set)...
        assert [e.sha for e in s0.manifest.values()] == \
            [e.sha for e in s1.manifest.values()]
        assert list(s0.manifest) == [first, second]
        # ...and identically running programs.
        assert r0.planp.current_sha == r1.planp.current_sha is not None

    def test_drill_is_reproducible_under_a_fixed_seed(self):
        def snapshot(seed):
            net, routers, services, manager, first, second = \
                self.drill(seed)
            return ([(s.ok, s.detail, s.retries, s.restarts,
                      s.chunks_sent, s.late_acks)
                     for s in manager.status(second).values()],
                    [entry for entry in net.faults.log])

        assert snapshot(31) == snapshot(31)

    def test_crash_without_restart_times_out(self):
        net, routers, services, manager = star_net(2, seed=33)
        r0, r1 = routers
        xfer = manager.push(BIG, [r0.address, r1.address],
                            policy=RetryPolicy(deadline=2.0))
        net.faults.at(net.now + 0.0015, net.faults.crash, "r0")
        assert manager.await_converged(xfer)
        statuses = manager.status(xfer)
        assert statuses[r0.address].ok is False
        # Routing reconverged away from the crashed node, so by the
        # deadline the manager had no route left to it.
        assert statuses[r0.address].detail == "unreachable"
        assert statuses[r1.address].ok is True
