"""Wire codec tests: packet-type matching, decode, encode."""

import pytest

from repro.lang import types as T
from repro.net.addresses import HostAddr
from repro.net.packet import (IpHeader, Packet, TcpHeader, UdpHeader,
                              tcp_packet, udp_packet)
from repro.runtime import codec

TCP_BLOB = T.TupleType((T.IP, T.TCP, T.BLOB))
UDP_BLOB = T.TupleType((T.IP, T.UDP, T.BLOB))
TCP_CHAR_INT = T.TupleType((T.IP, T.TCP, T.CHAR, T.INT))
UDP_HOST_INT = T.TupleType((T.IP, T.UDP, T.HOST, T.INT))


def tcp_pkt(payload=b"data"):
    return tcp_packet(HostAddr.parse("1.1.1.1"),
                      HostAddr.parse("2.2.2.2"), 10, 80, payload)


class TestMatching:
    def test_transport_must_match(self):
        assert codec.matches(tcp_pkt(), TCP_BLOB)
        assert not codec.matches(tcp_pkt(), UDP_BLOB)

    def test_raw_type_needs_raw_packet(self):
        raw_type = T.TupleType((T.IP, T.BLOB))
        raw = Packet(ip=IpHeader(), payload=b"x")
        assert codec.matches(raw, raw_type)
        assert not codec.matches(tcp_pkt(), raw_type)

    def test_fixed_views_need_enough_payload(self):
        assert codec.matches(tcp_pkt(b"A" + bytes(4)), TCP_CHAR_INT)
        assert not codec.matches(tcp_pkt(b"A"), TCP_CHAR_INT)

    def test_fixed_views_without_tail_need_exact_length(self):
        assert not codec.matches(tcp_pkt(b"A" + bytes(5)), TCP_CHAR_INT)

    def test_blob_tail_accepts_any_residue(self):
        ty = T.TupleType((T.IP, T.TCP, T.CHAR, T.BLOB))
        assert codec.matches(tcp_pkt(b"Xrest-of-payload"), ty)
        assert codec.matches(tcp_pkt(b"X"), ty)
        assert not codec.matches(tcp_pkt(b""), ty)

    def test_blob_must_be_final(self):
        bad = T.TupleType((T.IP, T.TCP, T.BLOB, T.INT))
        assert not codec.matches(tcp_pkt(), bad)
        with pytest.raises(codec.CodecError, match="final"):
            codec.packet_views(bad)


class TestDecode:
    def test_blob_view(self):
        value = codec.decode(tcp_pkt(b"payload"), TCP_BLOB)
        assert value[0] == tcp_pkt().ip
        assert isinstance(value[1], TcpHeader)
        assert value[2] == b"payload"

    def test_char_int_views(self):
        payload = b"K" + (1234).to_bytes(4, "big")
        value = codec.decode(tcp_pkt(payload), TCP_CHAR_INT)
        assert value[2] == "K"
        assert value[3] == 1234

    def test_negative_int_view(self):
        payload = b"K" + (-5 & 0xFFFFFFFF).to_bytes(4, "big")
        value = codec.decode(tcp_pkt(payload), TCP_CHAR_INT)
        assert value[3] == -5

    def test_host_view(self):
        addr = HostAddr.parse("9.8.7.6")
        payload = addr.value.to_bytes(4, "big") + (9000).to_bytes(4, "big")
        pkt = udp_packet(HostAddr.parse("1.1.1.1"),
                         HostAddr.parse("2.2.2.2"), 1, 2, payload)
        value = codec.decode(pkt, UDP_HOST_INT)
        assert value[2] == addr
        assert value[3] == 9000

    def test_string_view(self):
        ty = T.TupleType((T.IP, T.UDP, T.STRING))
        pkt = udp_packet(HostAddr.parse("1.1.1.1"),
                         HostAddr.parse("2.2.2.2"), 1, 2, b"QRY movie")
        assert codec.decode(pkt, ty)[2] == "QRY movie"


class TestEncode:
    def test_roundtrip_blob(self):
        pkt = tcp_pkt(b"hello")
        value = codec.decode(pkt, TCP_BLOB)
        again = codec.encode(value)
        assert again.ip == pkt.ip
        assert again.transport == pkt.transport
        assert again.payload == pkt.payload

    def test_roundtrip_views(self):
        payload = b"Z" + (77).to_bytes(4, "big")
        pkt = tcp_pkt(payload)
        value = codec.decode(pkt, TCP_CHAR_INT)
        assert codec.encode(value).payload == payload

    def test_proto_fixed_on_header_swap(self):
        # Build a value whose ip proto says TCP but transport is UDP.
        ip = IpHeader(proto=6)
        value = (ip, UdpHeader(src_port=1, dst_port=2), b"x")
        packet = codec.encode(value)
        assert packet.ip.proto == 17

    def test_channel_tag_attached(self):
        value = codec.decode(tcp_pkt(), TCP_BLOB)
        packet = codec.encode(value, channel="mychan")
        assert packet.channel == "mychan"

    def test_string_and_bool_encoding(self):
        value = (IpHeader(), UdpHeader(), True, "hi")
        packet = codec.encode(value)
        assert packet.payload == b"\x01hi"

    def test_bad_leading_value_rejected(self):
        with pytest.raises(codec.CodecError, match="ip header"):
            codec.encode((42, b"x"))

    def test_unencodable_component_rejected(self):
        with pytest.raises(codec.CodecError, match="cannot encode"):
            codec.encode((IpHeader(), UdpHeader(), object()))
