"""Content-addressed program cache: one front-end pass per source,
per-node engine instantiation, shared artifacts where safe."""

import pytest

from repro.jit import pipeline
from repro.jit.pipeline import ProgramCache
from repro.lang import VerificationError
from repro.net import Network
from repro.net.packet import tcp_packet
from repro.runtime import Deployment
from repro.runtime.netdeploy import DeploymentManager, DeploymentService

FORWARD = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
           "(OnRemote(network, p); (ps + 1, ss))")

WITH_VALS = ("val me : host = thisHost()\n" + FORWARD)

BAD = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
       "(OnRemote(network, p); OnRemote(network, p); (ps, ss))")


def chain(n_routers):
    net = Network(seed=7)
    a = net.add_host("a")
    routers = [net.add_router(f"r{i}") for i in range(n_routers)]
    b = net.add_host("b")
    previous = a
    for router in routers:
        net.link(previous, router)
        previous = router
    net.link(previous, b)
    net.finalize()
    return net, a, routers, b


class TestDeploymentAmortization:
    @pytest.mark.parametrize("backend", ["interpreter", "closure",
                                         "source"])
    def test_n_node_deploy_runs_frontend_once(self, backend):
        """The headline property: deploying one ASP to N nodes parses
        and verifies exactly once and instantiates N engines."""
        n = 5
        net, a, routers, b = chain(n)
        cache = ProgramCache()
        record = Deployment(cache=cache).install(
            FORWARD, routers, backend=backend, source_name="fw")
        # One central front-end pass (the miss); each of the N node
        # loads then hits the cache.
        assert cache.stats.frontend_misses == 1
        assert cache.stats.frontend_hits == n
        assert cache.stats.verify_misses == 1
        assert cache.stats.verify_hits == 0  # verified centrally, once
        assert cache.stats.loads == n
        assert record.cache_hits == cache.stats.total_hits
        assert record.source_sha == ProgramCache.digest(FORWARD)
        # Every node got its own channel-state storage.
        states = [id(r.planp.channel_states) for r in routers]
        assert len(set(states)) == n

    def test_deployed_nodes_all_process_traffic(self):
        net, a, routers, b = chain(3)
        Deployment(cache=ProgramCache()).install(FORWARD, routers,
                                                 backend="source")
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        a.ip_send(tcp_packet(a.address, b.address, 1, 80, b"x"))
        net.run()
        assert len(got) == 1
        for router in routers:
            assert router.planp.stats.packets_processed == 1
            assert router.planp.protocol_state == 1

    def test_rejection_cached_and_consistent(self):
        cache = ProgramCache()
        net, a, routers, b = chain(2)
        deployment = Deployment(cache=cache)
        with pytest.raises(VerificationError) as first:
            deployment.install(BAD, routers)
        with pytest.raises(VerificationError) as second:
            deployment.install(BAD, routers)
        assert cache.stats.verify_misses == 1
        assert cache.stats.verify_hits == 1  # second verdict from cache
        assert first.value.analysis == second.value.analysis
        # Rejected centrally: no node even grew a PLAN-P layer.
        assert all(r.planp is None or r.planp.loaded is None
                   for r in routers)


class TestArtifactSharing:
    def test_val_free_closure_engine_is_shared(self):
        """A program without top-level vals compiles to an immutable
        closure engine, shared across nodes; mutable state stays in the
        layer, so sharing is observation-safe."""
        net, a, routers, b = chain(2)
        cache = ProgramCache()
        Deployment(cache=cache).install(FORWARD, routers,
                                        backend="closure")
        r0, r1 = routers
        assert r0.planp.engine is r1.planp.engine
        assert cache.stats.engine_misses == 1
        assert cache.stats.engine_hits == 1
        a.ip_send(tcp_packet(a.address, b.address, 1, 80, b"x"))
        net.run()
        assert r0.planp.protocol_state == 1
        assert r1.planp.protocol_state == 1

    def test_closure_engine_with_vals_is_not_shared(self):
        """thisHost() in a val bakes node identity into the closure
        engine, so each node must get its own specialization."""
        net, a, routers, b = chain(2)
        cache = ProgramCache()
        Deployment(cache=cache).install(WITH_VALS, routers,
                                        backend="closure")
        r0, r1 = routers
        assert r0.planp.engine is not r1.planp.engine
        assert cache.stats.engine_hits == 0

    def test_source_artifact_reused_with_vals(self):
        """The source backend's emitted module is ctx-independent even
        with vals (globals resolve through a per-node namespace), so the
        bytecode is compiled once and the engines differ per node."""
        net, a, routers, b = chain(3)
        cache = ProgramCache()
        Deployment(cache=cache).install(WITH_VALS, routers,
                                        backend="source")
        r0, r1, r2 = routers
        assert cache.stats.engine_misses == 1
        assert cache.stats.engine_hits == 2
        assert r0.planp.engine is not r1.planp.engine
        assert r0.planp.engine.artifact is r1.planp.engine.artifact
        assert r1.planp.engine.artifact is r2.planp.engine.artifact

    def test_disabled_cache_shares_nothing(self):
        net, a, routers, b = chain(2)
        cache = ProgramCache(max_entries=0)
        Deployment(cache=cache).install(FORWARD, routers,
                                        backend="closure")
        r0, r1 = routers
        assert r0.planp.engine is not r1.planp.engine
        assert cache.stats.frontend_hits == 0
        # Central pass plus one full front end per node: all misses.
        assert cache.stats.frontend_misses == 3

    def test_fifo_eviction_bounds_entries(self):
        cache = ProgramCache(max_entries=2)
        sources = [f"-- v{i}\n{FORWARD}" for i in range(4)]
        for source in sources:
            cache.frontend(source)
        assert len(cache._frontend) == 2
        # Oldest entries were evicted; newest are present.
        assert ProgramCache.digest(sources[3]) in cache._frontend
        assert ProgramCache.digest(sources[0]) not in cache._frontend


class TestLoadProgramFlags:
    def test_cache_hit_flag(self):
        cache = ProgramCache()
        cold = pipeline.load_program(FORWARD, cache=cache)
        warm = pipeline.load_program(FORWARD, cache=cache)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert cold.source_sha == warm.source_sha \
            == ProgramCache.digest(FORWARD)

    def test_default_cache_is_module_global(self):
        pipeline.PROGRAM_CACHE.clear()
        before = pipeline.PROGRAM_CACHE.stats.loads
        pipeline.load_program(FORWARD)
        assert pipeline.PROGRAM_CACHE.stats.loads == before + 1
        pipeline.PROGRAM_CACHE.clear()


class TestNetDeployCache:
    def test_push_acks_carry_cache_hit_flag(self):
        pipeline.PROGRAM_CACHE.clear()
        net = Network(seed=41)
        admin = net.add_host("admin")
        routers = [net.add_router(f"r{i}") for i in range(4)]
        endpoint = net.add_host("endpoint")
        for router in routers:
            net.link(admin, router, bandwidth=100e6)
        net.link(routers[-1], endpoint, bandwidth=100e6)
        net.finalize()
        services = [DeploymentService(net, r) for r in routers]
        manager = DeploymentManager(net, admin)
        xfer = manager.push(FORWARD, [r.address for r in routers])
        net.run(until=5.0)
        assert manager.all_ok(xfer)
        statuses = manager.status(xfer)
        hits = [s.cache_hit for s in statuses.values()]
        assert hits.count(False) == 1  # exactly one cold install
        assert hits.count(True) == len(routers) - 1
        assert all(s.installed == [xfer] for s in services)
        pipeline.PROGRAM_CACHE.clear()
