"""Lifecycle manager tests: history, rollout gate, breaker, rollback."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jit.pipeline import ProgramCache
from repro.lang import VerificationError
from repro.net import Network
from repro.net.packet import udp_packet
from repro.runtime import (BreakerState, CircuitBreaker, Deployment,
                           LifecycleManager, LifecyclePolicy, RolloutState)

GOOD = ("channel network(ps : int, ss : unit, p : ip*udp*blob) is "
        "(OnRemote(network, p); (ps + 1, ss))")

GOOD_V2 = ("channel network(ps : int, ss : unit, p : ip*udp*blob) is "
           "(OnRemote(network, p); (ps + 2, ss))")

#: Raises DivideByZero whenever the first payload byte is 0 mod 5 —
#: rejected by the delivery analysis, so it ships with verify=False.
BAD = """
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let
    val body : blob = #3 p
    val seq : int = blobByte(body, 0)
    val poison : int = 1 / (seq mod 5)
  in
    (OnRemote(network, p); (ps + poison - poison + 1, ss))
  end
"""

UNSAFE = ("channel network(ps : unit, ss : unit, p : ip*udp*blob) is "
          "(OnRemote(network, p); OnRemote(network, p); (ps, ss))")


def chain_net(n_routers=4, seed=5):
    net = Network(seed=seed)
    src = net.add_host("src")
    routers = [net.add_router(f"r{i}") for i in range(n_routers)]
    dst = net.add_host("dst")
    prev = src
    for r in routers:
        net.link(prev, r, bandwidth=100e6, latency=0.0002)
        prev = r
    net.link(prev, dst, bandwidth=100e6, latency=0.0002)
    net.finalize()
    return net, src, routers, dst


def traffic(net, src, dst, tick=0.02):
    """Start a rotating-payload-byte UDP flow (deterministic)."""
    counter = [0]

    def send():
        src.ip_send(udp_packet(src.address, dst.address, 5000, 7000,
                               bytes([counter[0] % 256])))
        counter[0] += 1
        net.sim.schedule(tick, send)

    net.sim.schedule(0.0, send)
    return counter


def manager_for(net, routers, **overrides):
    defaults = dict(canary_fraction=0.25, health_window=0.5,
                    error_budget=3, budget_window=0.5, cooldown=0.3,
                    probation_packets=10, rollback_after_trips=2)
    defaults.update(overrides)
    manager = LifecycleManager(net, deployment=Deployment(),
                               policy=LifecyclePolicy(**defaults))
    manager.manage(*routers)
    return manager


# ---------------------------------------------------------------------------
# circuit breaker (pure mechanism)
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, budget=3, window=1.0, probation=5):
        now = [0.0]
        breaker = CircuitBreaker(budget=budget, window=window,
                                 probation=probation,
                                 clock=lambda: now[0])
        return breaker, now

    def test_trips_above_budget_within_window(self):
        breaker, now = self.make(budget=3, window=1.0)
        for i in range(3):
            now[0] = i * 0.1
            assert breaker.record_error() is False
        now[0] = 0.35
        assert breaker.record_error() is True
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1

    def test_old_errors_expire(self):
        breaker, now = self.make(budget=3, window=1.0)
        for i in range(3):
            now[0] = i * 0.1
            breaker.record_error()
        # The next error comes after the first three have aged out.
        now[0] = 2.0
        assert breaker.record_error() is False
        assert breaker.state is BreakerState.CLOSED

    def test_open_absorbs_inflight_errors(self):
        breaker, now = self.make(budget=0)
        assert breaker.record_error() is True
        assert breaker.record_error() is False  # already open
        assert breaker.trips == 1

    def test_half_open_error_retrips(self):
        breaker, now = self.make(budget=3)
        breaker._trip(0.0)
        breaker.half_open()
        assert breaker.record_error() is True
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_half_open_probation_closes(self):
        breaker, now = self.make(budget=3, probation=4)
        breaker._trip(0.0)
        breaker.half_open()
        assert [breaker.record_ok() for _ in range(4)] == \
            [False, False, False, True]
        assert breaker.state is BreakerState.CLOSED

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(budget=-1, window=1.0, probation=1,
                           clock=lambda: 0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(budget=1, window=0.0, probation=1,
                           clock=lambda: 0.0)


class TestBreakerWindowProperties:
    """The satellite property tests: the sliding window is exact."""

    @given(budget=st.integers(min_value=1, max_value=8),
           window=st.floats(min_value=0.1, max_value=10.0),
           bursts=st.lists(st.integers(min_value=0, max_value=8),
                           min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_bursts_below_budget_never_trip(self, budget, window,
                                            bursts):
        """Bursts of ≤ budget errors, separated by more than a full
        window, never trip the breaker."""
        now = [0.0]
        breaker = CircuitBreaker(budget=budget, window=window,
                                 probation=1, clock=lambda: now[0])
        t = 0.0
        for burst in bursts:
            for _ in range(min(burst, budget)):
                now[0] = t
                assert breaker.record_error() is False
            t += window * 1.5  # strictly outside any shared window
        assert breaker.state is BreakerState.CLOSED
        assert breaker.trips == 0

    @given(budget=st.integers(min_value=0, max_value=8),
           window=st.floats(min_value=0.1, max_value=10.0),
           over=st.integers(min_value=1, max_value=5),
           spread=st.floats(min_value=0.0, max_value=0.99))
    @settings(max_examples=60, deadline=None)
    def test_sustained_burst_above_budget_trips_within_window(
            self, budget, window, over, spread):
        """budget + over errors inside one window always trip, at or
        before the (budget+1)-th error — i.e. within one window of the
        first error."""
        now = [0.0]
        breaker = CircuitBreaker(budget=budget, window=window,
                                 probation=1, clock=lambda: now[0])
        n = budget + over
        step = (window * spread) / max(n - 1, 1)
        tripped_at = None
        for i in range(n):
            now[0] = i * step
            if breaker.record_error():
                tripped_at = i
                break
        assert tripped_at == budget  # the first over-budget error
        assert breaker.state is BreakerState.OPEN
        assert now[0] <= window  # within one window of the first error

    @given(times=st.lists(st.floats(min_value=0.0, max_value=50.0),
                          min_size=1, max_size=40),
           budget=st.integers(min_value=0, max_value=6),
           window=st.floats(min_value=0.25, max_value=8.0))
    @settings(max_examples=60, deadline=None)
    def test_trip_point_matches_brute_force(self, times, budget,
                                            window):
        """The breaker trips at exactly the first error whose trailing
        closed [t - window, t] interval holds more than budget errors
        (the docstring's promised inclusive window)."""
        times = sorted(times)
        now = [0.0]
        breaker = CircuitBreaker(budget=budget, window=window,
                                 probation=1, clock=lambda: now[0])
        expected = None
        for i, t in enumerate(times):
            in_window = sum(1 for u in times[:i + 1]
                            if t - window <= u <= t)
            if in_window > budget:
                expected = i
                break
        actual = None
        for i, t in enumerate(times):
            now[0] = t
            if breaker.record_error():
                actual = i
                break
        assert actual == expected

    @given(budget=st.integers(min_value=1, max_value=6),
           window=st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0, 8.0]),
           start=st.sampled_from([0.0, 1.0, 2.5, 10.0]))
    @settings(max_examples=60, deadline=None)
    def test_error_exactly_window_old_still_counts(self, budget,
                                                   window, start):
        """The exact-boundary bug: ``budget`` errors at ``t`` plus one
        at exactly ``t + window`` is budget+1 errors inside the closed
        window, so it must trip (the sampled floats make the boundary
        arithmetic exact)."""
        now = [start]
        breaker = CircuitBreaker(budget=budget, window=window,
                                 probation=1, clock=lambda: now[0])
        for _ in range(budget):
            assert breaker.record_error() is False
        now[0] = start + window  # exactly window seconds later
        assert breaker.record_error() is True
        assert breaker.state is BreakerState.OPEN

    @given(budget=st.integers(min_value=1, max_value=6),
           window=st.sampled_from([0.25, 0.5, 1.0, 2.0, 4.0, 8.0]))
    @settings(max_examples=60, deadline=None)
    def test_error_just_past_window_expires(self, budget, window):
        """One float tick past the boundary the old errors age out, so
        the same sequence must NOT trip."""
        import math
        now = [0.0]
        breaker = CircuitBreaker(budget=budget, window=window,
                                 probation=1, clock=lambda: now[0])
        for _ in range(budget):
            assert breaker.record_error() is False
        now[0] = math.nextafter(window, math.inf)
        assert breaker.record_error() is False
        assert breaker.state is BreakerState.CLOSED


# ---------------------------------------------------------------------------
# install history
# ---------------------------------------------------------------------------


class TestHistory:
    def test_generations_are_numbered(self):
        net, src, routers, dst = chain_net(2)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True, source_name="v1")
        manager.rollout(GOOD_V2, routers, force=True, source_name="v2")
        for r in routers:
            nl = manager.of(r)
            assert [g.number for g in nl.generations] == [1, 2]
            assert nl.current.sha == ProgramCache.digest(GOOD_V2)

    def test_superseded_generation_keeps_snapshot(self):
        net, src, routers, dst = chain_net(2)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        traffic(net, src, dst)
        net.run(until=0.5)
        processed = routers[0].planp.stats.packets_processed
        assert processed > 0
        manager.rollout(GOOD_V2, routers, force=True)
        nl = manager.of(routers[0])
        snap = nl.generations[0].snapshot
        assert snap is not None
        assert snap.protocol_state == processed  # ps counted packets

    def test_manage_adopts_preinstalled_program(self):
        net, src, routers, dst = chain_net(1)
        deployment = Deployment()
        deployment.install(GOOD, [routers[0]])
        manager = LifecycleManager(net, deployment=deployment)
        (nl,) = manager.manage(routers[0])
        assert nl.current is not None
        assert nl.current.sha == ProgramCache.digest(GOOD)

    def test_verification_failure_reaches_no_node(self):
        net, src, routers, dst = chain_net(2)
        manager = manager_for(net, routers)
        with pytest.raises(VerificationError):
            manager.rollout(UNSAFE, routers)
        assert all(manager.of(r).current is None for r in routers)
        assert all(r.planp.loaded is None for r in routers)


# ---------------------------------------------------------------------------
# staged rollout
# ---------------------------------------------------------------------------


class TestRollout:
    def test_healthy_canary_promotes(self):
        net, src, routers, dst = chain_net(4)
        manager = manager_for(net, routers)
        traffic(net, src, dst)
        rollout = manager.rollout(GOOD, routers, source_name="good")
        assert rollout.state is RolloutState.CANARY
        assert rollout.canary == ["r0"]
        assert routers[0].planp.loaded is not None
        assert routers[1].planp.loaded is None
        net.run(until=2.0)
        assert rollout.state is RolloutState.PROMOTED
        assert all(r.planp.loaded is not None for r in routers)

    def test_bad_canary_aborts_and_rolls_back(self):
        net, src, routers, dst = chain_net(4)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        traffic(net, src, dst)
        net.run(until=0.5)
        rollout = manager.rollout(BAD, routers, verify=False,
                                  source_name="bad")
        net.run(until=3.0)
        assert rollout.state is RolloutState.ABORTED
        assert rollout.reason
        good_sha = ProgramCache.digest(GOOD)
        # Canary back on generation 1; the rest never saw the bad one.
        for r in routers:
            nl = manager.of(r)
            assert nl.current.sha == good_sha
            assert not nl.quarantined
        assert manager.aborted == 1

    def test_silent_canary_aborts_after_extensions(self):
        net, src, routers, dst = chain_net(4)
        manager = manager_for(net, routers)
        # No traffic at all: the gate must extend, then refuse to
        # promote a program nothing has exercised.
        rollout = manager.rollout(GOOD, routers)
        net.run(until=5.0)
        assert rollout.state is RolloutState.ABORTED
        assert "packets" in rollout.reason
        assert rollout.extensions == manager.policy.max_extensions

    def test_explicit_canary_selection(self):
        net, src, routers, dst = chain_net(4)
        manager = manager_for(net, routers)
        traffic(net, src, dst)
        rollout = manager.rollout(GOOD, routers, canary=[routers[2]])
        assert rollout.canary == ["r2"]
        assert routers[2].planp.loaded is not None
        assert routers[0].planp.loaded is None


# ---------------------------------------------------------------------------
# breaker orchestration: quarantine, half-open, rollback
# ---------------------------------------------------------------------------


class TestQuarantine:
    def test_trip_quarantines_and_reverts_to_standard_ip(self):
        net, src, routers, dst = chain_net(2)
        manager = manager_for(net, routers, rollback_after_trips=99)
        manager.rollout(BAD, routers, verify=False, force=True)
        delivered = []
        dst.delivery_taps.append(lambda p: delivered.append(p))
        traffic(net, src, dst)
        net.run(until=0.4)
        assert manager.trips >= 1
        assert manager.quarantined_nodes()
        # Quarantined nodes keep forwarding as plain IP routers.
        before = len(delivered)
        net.run(until=0.5)
        assert len(delivered) > before

    def test_half_open_retrial_recovers_when_errors_stop(self):
        net, src, routers, dst = chain_net(1)
        manager = manager_for(net, routers, error_budget=2,
                              probation_packets=5,
                              rollback_after_trips=99)
        manager.rollout(BAD, routers, verify=False, force=True)
        nl = manager.of(routers[0])
        counter = traffic(net, src, dst)
        net.run(until=0.4)
        assert nl.quarantined
        # Stop the poisonous payload bytes: from here on, every first
        # byte is 1 (1 mod 5 != 0 — the bad ASP no longer errors).
        counter[0] = 1

        def clamp():
            counter[0] = 1
            net.sim.schedule(0.01, clamp)

        net.sim.schedule(0.0, clamp)
        net.run(until=2.0)
        assert manager.half_opens >= 1
        assert manager.closes >= 1
        assert not nl.quarantined
        assert nl.breaker.state is BreakerState.CLOSED
        assert routers[0].planp.loaded is not None

    def test_repeated_trips_trigger_fleet_rollback(self):
        net, src, routers, dst = chain_net(4)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        traffic(net, src, dst)
        net.run(until=0.5)
        manager.rollout(BAD, routers, verify=False, force=True)
        net.run(until=6.0)
        assert manager.rollbacks >= 1
        good_sha = ProgramCache.digest(GOOD)
        for r in routers:
            nl = manager.of(r)
            assert nl.current.sha == good_sha
            assert not nl.quarantined
            assert nl.rolled_back  # the bad generation is audited
        assert not manager.quarantined_nodes()

    def test_rollback_without_previous_generation_leaves_plain_ip(self):
        net, src, routers, dst = chain_net(2)
        manager = manager_for(net, routers)
        # The bad ASP is generation 1 — there is nothing to roll back
        # to, so rollback must land the nodes on standard processing.
        manager.rollout(BAD, routers, verify=False, force=True)
        traffic(net, src, dst)
        net.run(until=6.0)
        assert not manager.quarantined_nodes()
        for r in routers:
            assert manager.of(r).current is None
            assert r.planp.loaded is None
            assert not r.planp.quarantined

    def test_operator_rollback(self):
        net, src, routers, dst = chain_net(2)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        manager.rollout(GOOD_V2, routers, force=True)
        rolled = manager.rollback(reason="operator")
        assert sorted(rolled) == ["r0", "r1"]
        good_sha = ProgramCache.digest(GOOD)
        assert all(manager.of(r).current.sha == good_sha
                   for r in routers)

    def test_rollback_restores_snapshot_state(self):
        net, src, routers, dst = chain_net(1)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        traffic(net, src, dst)
        net.run(until=0.5)
        layer = routers[0].planp
        processed = layer.protocol_state
        assert processed > 0
        manager.rollout(GOOD_V2, routers, force=True)
        manager.rollback(reason="test")
        # Generation 1 resumes exactly where it left off.
        assert layer.protocol_state == processed
        assert layer.loaded.source_sha == ProgramCache.digest(GOOD)


# ---------------------------------------------------------------------------
# wire-compatibility veto gate
# ---------------------------------------------------------------------------

#: Same transport, but a 4-byte int field inserted before the tail —
#: overlapping admission with a different layout, so gen-1 and gen-2
#: nodes would misread each other's packets.
INCOMPAT = ("channel network(ps : int, ss : unit, p : ip*udp*int*blob)"
            " is (OnRemote(network, p); (ps + 1, ss))")


class TestWireVeto:
    def test_incompatible_rollout_vetoed_before_canary(self):
        net, src, routers, dst = chain_net(4)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True, source_name="v1")
        rollout = manager.rollout(INCOMPAT, routers, source_name="v2")
        assert rollout.state is RolloutState.ABORTED
        assert rollout.reason.startswith("wire-incompatible:")
        assert manager.vetoes == 1
        # Vetoed before any install: every node still runs gen 1 and
        # never saw the candidate.
        for r in routers:
            nl = manager.of(r)
            assert len(nl.generations) == 1
            assert nl.current.sha != rollout.sha
        assert rollout.wire_verdicts  # one verdict per running gen
        actions = [e.data.get("action")
                   for e in net.obs.events.filter(kind="rollout")]
        assert "veto" in actions
        assert "canary" not in actions

    def test_veto_event_carries_verdict(self):
        net, src, routers, dst = chain_net(2)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        manager.rollout(INCOMPAT, routers)
        (veto,) = [e for e in net.obs.events.filter(kind="rollout")
                   if e.data.get("action") == "veto"]
        assert "incompatible" in veto.data["verdict"]
        assert veto.data["nodes"] == 2

    def test_force_overrides_veto(self):
        net, src, routers, dst = chain_net(2)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        rollout = manager.rollout(INCOMPAT, routers, force=True)
        assert rollout.state is RolloutState.PROMOTED
        assert manager.vetoes == 0
        assert all(manager.of(r).current.sha == rollout.sha
                   for r in routers)

    def test_policy_can_disable_wire_check(self):
        net, src, routers, dst = chain_net(4)
        manager = manager_for(net, routers, wire_check=False)
        manager.rollout(GOOD, routers, force=True)
        rollout = manager.rollout(INCOMPAT, routers)
        assert rollout.state is RolloutState.CANARY
        assert manager.vetoes == 0

    def test_compatible_rollout_proceeds_to_canary(self):
        net, src, routers, dst = chain_net(4)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        rollout = manager.rollout(GOOD_V2, routers)
        assert rollout.state is RolloutState.CANARY
        assert rollout.wire_verdicts == {
            ProgramCache.digest(GOOD)[:12]: "compatible"}
        assert manager.vetoes == 0

    def test_empty_fleet_first_install_is_not_checked(self):
        net, src, routers, dst = chain_net(4)
        manager = manager_for(net, routers)
        rollout = manager.rollout(GOOD, routers)
        assert rollout.state is RolloutState.CANARY
        assert rollout.wire_verdicts == {}


# ---------------------------------------------------------------------------
# rollback(sha) audit: absent generations, contained restore failures
# ---------------------------------------------------------------------------


class TestRollbackAudit:
    def test_sha_absent_everywhere_is_clean_noop(self):
        net, src, routers, dst = chain_net(2)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        rolled = manager.rollback("0" * 64, reason="operator")
        assert rolled == []
        good_sha = ProgramCache.digest(GOOD)
        assert all(manager.of(r).current.sha == good_sha
                   for r in routers)
        skips = [e for e in net.obs.events.filter(kind="rollback")
                 if e.data.get("action") == "skip"]
        assert len(skips) == 1
        assert skips[0].data["nodes"] == 0

    def test_sha_absent_on_one_node_skips_it(self):
        net, src, routers, dst = chain_net(2)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        manager.rollout(GOOD_V2, [routers[0]], force=True)
        v2_sha = ProgramCache.digest(GOOD_V2)
        rolled = manager.rollback(v2_sha, reason="operator")
        assert rolled == ["r0"]
        good_sha = ProgramCache.digest(GOOD)
        assert manager.of("r0").current.sha == good_sha
        assert manager.of("r1").current.sha == good_sha
        assert len(manager.of("r1").generations) == 1  # untouched
        skips = [e for e in net.obs.events.filter(kind="rollback")
                 if e.data.get("action") == "skip"]
        assert [e.node for e in skips] == ["r1"]
        assert skips[0].data["current"] == good_sha[:12]

    def test_restore_failure_contained_per_node(self, monkeypatch):
        net, src, routers, dst = chain_net(3)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        manager.rollout(GOOD_V2, routers, force=True)
        original = LifecycleManager._restore

        def failing(self, nl, gen):
            if nl.node.name == "r1":
                raise RuntimeError("disk on fire")
            return original(self, nl, gen)

        monkeypatch.setattr(LifecycleManager, "_restore", failing)
        rolled = manager.rollback(reason="operator")
        # The failing node is contained; the rest of the fleet rolls.
        assert rolled == ["r0", "r2"]
        good_sha = ProgramCache.digest(GOOD)
        assert manager.of("r0").current.sha == good_sha
        assert manager.of("r2").current.sha == good_sha
        # The failed node reverted to standard IP with an emptied,
        # audited history — no half-rolled mixed state.
        nl = manager.of("r1")
        assert nl.current is None
        assert nl.layer.loaded is None
        assert not nl.quarantined
        failures = [e for e in net.obs.events.filter(kind="rollback")
                    if e.data.get("action") == "node-failed"]
        assert [e.node for e in failures] == ["r1"]
        assert "disk on fire" in failures[0].data["error"]


# ---------------------------------------------------------------------------
# reinstall-after-quarantine hygiene (satellite 2)
# ---------------------------------------------------------------------------


class TestCleanReinstall:
    def test_uninstall_clears_all_program_state(self):
        net, src, routers, dst = chain_net(1)
        deployment = Deployment()
        deployment.install(GOOD, [routers[0]])
        traffic(net, src, dst)
        net.run(until=0.3)
        layer = routers[0].planp
        assert layer.channel_states and layer.protocol_state
        layer.uninstall()
        assert layer.channel_states == {}
        assert layer.protocol_state is None
        assert layer.loaded is None

    def test_reinstall_after_quarantine_starts_clean(self):
        net, src, routers, dst = chain_net(1)
        manager = manager_for(net, routers, rollback_after_trips=99,
                              cooldown=60.0)  # stay quarantined
        manager.rollout(BAD, routers, verify=False, force=True)
        traffic(net, src, dst)
        net.run(until=0.4)
        layer = routers[0].planp
        assert manager.of(routers[0]).quarantined
        assert layer.channel_states == {}  # quarantine dropped state
        assert layer.protocol_state is None
        # A fresh install starts from the program's own initial state —
        # nothing leaks from the quarantined incarnation.
        manager.rollout(GOOD, routers, force=True)
        assert layer.protocol_state == 0
        assert not layer.quarantined
        assert len(layer.channel_states) == 1
        layer.uninstall()
        manager.rollout(GOOD_V2, routers, force=True)
        # Exactly the new program's one channel — no stale entries.
        assert len(layer.channel_states) == 1
        assert layer.protocol_state == 0

    def test_quarantined_layer_ignores_traffic(self):
        net, src, routers, dst = chain_net(1)
        manager = manager_for(net, routers, rollback_after_trips=99,
                              cooldown=60.0)
        manager.rollout(BAD, routers, verify=False, force=True)
        traffic(net, src, dst)
        net.run(until=0.4)
        layer = routers[0].planp
        assert manager.of(routers[0]).quarantined
        processed = layer.stats.packets_processed
        net.run(until=0.8)
        # Quarantine gate: no further ASP processing happens.
        assert layer.stats.packets_processed == processed


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------


class TestObservability:
    def test_lifecycle_metrics_in_snapshot(self):
        net, src, routers, dst = chain_net(2)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        snap = net.metrics_snapshot(include_global=False)
        assert snap["lifecycle.managed_nodes"] == 2
        assert snap["lifecycle.promoted"] == 1
        assert snap["lifecycle.quarantined_nodes"] == 0

    def test_event_kinds_emitted(self):
        net, src, routers, dst = chain_net(4)
        manager = manager_for(net, routers)
        manager.rollout(GOOD, routers, force=True)
        traffic(net, src, dst)
        net.run(until=0.5)
        manager.rollout(BAD, routers, verify=False, force=True)
        net.run(until=6.0)
        kinds = {e.kind for e in net.obs.events.filter()}
        assert {"rollout", "quarantine", "rollback"} <= kinds
        actions = {(e.kind, e.data.get("action"))
                   for e in net.obs.events.filter()}
        assert ("rollout", "force-promote") in actions
        assert ("quarantine", "trip") in actions
        assert ("rollback", "done") in actions
