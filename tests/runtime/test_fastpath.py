"""Dispatch fast path: table-driven classification must be observably
identical to the structural matcher, while matching each packet once."""

import pytest
from hypothesis import given, settings

from repro.net import Network
from repro.net.packet import tcp_packet, udp_packet
from repro.runtime import PlanPLayer, codec

from ..strategies import packets

#: Programs spanning the dispatch space: network overloads differing by
#: transport and payload shape, plus user-tagged channels.
PROGRAMS = {
    "overloads": """
channel network(ps : int, ss : unit, p : ip*udp*host*int) is
  (deliver(p); (ps + 100, ss))
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
channel network(ps : int, ss : unit, p : ip*tcp*char*blob) is
  (OnRemote(network, p); (ps + 10, ss))
""",
    "tagged": """
channel mine(ps : int, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps + 1, ss))
channel audio(ps : int, ss : unit, p : ip*udp*int*blob) is
  (deliver(p); (ps + 2, ss))
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, p); (ps, ss))
""",
    "raw-and-fixed": """
channel network(ps : int, ss : unit, p : ip*int) is
  (deliver(p); (ps + 1, ss))
channel network(ps : int, ss : unit, p : ip*bool*int) is
  (deliver(p); (ps + 2, ss))
channel network(ps : int, ss : unit, p : ip*udp*string) is
  (deliver(p); (ps + 3, ss))
""",
}


def layer_on_router():
    net = Network(seed=9)
    a = net.add_host("a")
    r = net.add_router("r")
    b = net.add_host("b")
    net.link(a, r)
    net.link(r, b)
    net.finalize()
    return net, a, r, b, PlanPLayer(r)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@settings(max_examples=200, deadline=None)
@given(packet=packets())
def test_fastpath_selects_same_decl_as_structural_match(name, packet):
    net, a, r, b, layer = layer_on_router()
    layer.install(PROGRAMS[name])
    structural = layer._match(packet)
    hit = layer._lookup(packet)
    if structural is None:
        assert hit is None
    else:
        assert hit is not None
        decl, decoder, _plan = hit
        assert decl is structural
        # The prebuilt decoder agrees with the structural decode.
        assert decoder(packet) == codec.decode(packet, decl.packet_type)


@settings(max_examples=100, deadline=None)
@given(packet=packets())
def test_fastpath_equivalence_with_globals(packet):
    """Same property on a program with top-level vals (the table is
    built from declarations only, so vals must not affect dispatch)."""
    source = ("val k0 : int = 7\n"
              "channel network(ps : int, ss : unit, p : ip*tcp*blob) is\n"
              "  (OnRemote(network, p); (ps + k0, ss))\n")
    net, a, r, b, layer = layer_on_router()
    layer.install(source)
    structural = layer._match(packet)
    hit = layer._lookup(packet)
    assert (structural is None) == (hit is None)
    if hit is not None:
        assert hit[0] is structural


class TestSingleMatch:
    def test_steady_state_does_no_structural_matching(self, monkeypatch):
        """Once installed, a forwarded packet must not call
        codec.matches at all (the old path called it per overload,
        twice per packet)."""
        net, a, r, b, layer = layer_on_router()
        layer.install(PROGRAMS["overloads"])
        calls = []
        real = codec.matches
        monkeypatch.setattr(codec, "matches",
                            lambda *args: calls.append(1) or real(*args))
        a.ip_send(udp_packet(a.address, b.address, 1, 2, bytes(8)))
        a.ip_send(tcp_packet(a.address, b.address, 1, 80, b"Gx"))
        net.run()
        assert layer.stats.packets_processed == 2
        assert calls == []

    def test_wants_match_carried_into_process(self):
        net, a, r, b, layer = layer_on_router()
        layer.install(PROGRAMS["overloads"])
        packet = udp_packet(a.address, b.address, 1, 2, bytes(3))
        assert layer.wants(packet, None)
        before = layer.stats.fastpath_dispatches
        layer.process(packet, None)
        # process() consumed the carried match instead of re-classifying.
        assert layer.stats.fastpath_dispatches == before
        assert layer.stats.packets_processed == 1

    def test_carry_survives_cpu_model_deferral(self):
        net, a, r, b, layer = layer_on_router()
        layer.install(PROGRAMS["overloads"])
        layer.cpu.per_item_s = 0.25
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        for _ in range(3):
            a.ip_send(udp_packet(a.address, b.address, 1, 2, bytes(3)))
        net.run()
        assert len(got) == 3
        assert layer.stats.packets_processed == 3

    def test_process_without_wants_still_classifies(self):
        net, a, r, b, layer = layer_on_router()
        layer.install(PROGRAMS["overloads"])
        packet = udp_packet(a.address, b.address, 1, 2, bytes(3))
        layer.process(packet, None)  # no wants() first
        assert layer.stats.packets_processed == 1

    def test_dispatch_counters(self):
        net, a, r, b, layer = layer_on_router()
        layer.install(PROGRAMS["overloads"])
        a.ip_send(udp_packet(a.address, b.address, 1, 2, bytes(3)))
        net.run()
        assert layer.stats.fastpath_dispatches >= 1
        assert layer.stats.structural_dispatches == 0


class TestOverloadOrder:
    def test_first_matching_overload_wins(self):
        """Declaration order is preserved by the table: an 8-byte UDP
        payload matches host*int (declared first), not blob."""
        net, a, r, b, layer = layer_on_router()
        layer.install(PROGRAMS["overloads"])
        a.ip_send(udp_packet(a.address, b.address, 1, 2, bytes(8)))
        a.ip_send(udp_packet(a.address, b.address, 1, 2, bytes(3)))
        net.run()
        assert layer.protocol_state == 101

    def test_tagged_packets_only_match_their_channel(self):
        net, a, r, b, layer = layer_on_router()
        layer.install(PROGRAMS["tagged"])
        tagged = udp_packet(a.address, b.address, 1, 2, b"x",
                            channel="mine")
        untagged = udp_packet(a.address, b.address, 1, 2, b"x")
        assert layer._lookup(tagged) is not None
        assert layer._lookup(untagged) is None  # no udp network overload

    def test_uninstall_clears_table(self):
        net, a, r, b, layer = layer_on_router()
        layer.install(PROGRAMS["overloads"])
        layer.uninstall()
        assert not layer.wants(udp_packet(a.address, b.address, 1, 2,
                                          bytes(3)), None)


class TestInterpreterGlobalsReset:
    def test_moved_program_reevaluates_globals(self):
        """A LoadedProgram moved to another node must re-read node state
        in its top-level vals (thisHost), not keep the first node's."""
        src = ("val me : host = thisHost()\n"
               "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n"
               "  (if ipDst(#1 p) = me then (deliver(p); (ps + 1, ss))\n"
               "   else (OnRemote(network, p); (ps, ss)))\n")
        net = Network(seed=3)
        a = net.add_host("a")
        b = net.add_host("b")
        net.link(a, b)
        net.finalize()
        layer_a = PlanPLayer(a)
        loaded = layer_a.install(src, backend="interpreter")
        env_a = loaded.engine.globals_env(layer_a)
        assert env_a.lookup("me") == a.address
        layer_b = PlanPLayer(b)
        layer_b.install_loaded(loaded)
        env_b = loaded.engine.globals_env(layer_b)
        assert env_b.lookup("me") == b.address
