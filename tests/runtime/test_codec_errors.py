"""Codec error-taxonomy regressions: every malformed-input path raises
:class:`CodecError` — never ``struct.error``, ``IndexError``,
``ValueError``, or ``OverflowError`` — so the PlanPLayer containment
boundary (which catches ``(PlanPError, CodecError)``) holds.

Each test pins one path found in the ISSUE-7 audit:

* ``decode`` on a truncated payload used to short-slice ints silently
  (``int.from_bytes`` accepts 2 of 4 bytes) and leak ``IndexError`` from
  ``chr`` on a missing char byte;
* ``make_decoder`` closures had no length guard at all;
* ``make_batch_decoder`` leaked ``struct.error`` from ``unpack_from`` on
  a short payload (tail layouts) and from ``iter_unpack`` when the
  joined payload length was not a stride multiple (tail-less layouts);
* ``encode`` leaked ``OverflowError`` for ints outside signed 32-bit —
  a PLAN-P program emitting ``2147483647 + 1`` took the node down.
"""

import pytest

from repro.lang import types as T
from repro.net import Network
from repro.net.addresses import HostAddr
from repro.net.packet import (PROTO_RAW, PROTO_TCP, IpHeader, Packet,
                              TcpHeader, tcp_packet)
from repro.runtime import PlanPLayer, codec
from repro.runtime.codec import CodecError


def _ty(*names):
    return T.TupleType(tuple(getattr(T, n.upper()) for n in names))


_IP = IpHeader(src=HostAddr(1), dst=HostAddr(2), ttl=8, proto=PROTO_TCP)
_TCP = TcpHeader(src_port=1000, dst_port=80)


def _pkt(payload, *, transport=_TCP, proto=PROTO_TCP):
    ip = IpHeader(src=_IP.src, dst=_IP.dst, ttl=_IP.ttl, proto=proto)
    return Packet(ip=ip, transport=transport, payload=payload)


class TestDecode:
    def test_truncated_int_view(self):
        with pytest.raises(CodecError, match="shorter than"):
            codec.decode(_pkt(b"\x01\x02"), _ty("ip", "tcp", "int"))

    def test_missing_char_byte(self):
        with pytest.raises(CodecError, match="shorter than"):
            codec.decode(_pkt(b""), _ty("ip", "tcp", "char", "blob"))

    def test_tailless_length_mismatch(self):
        with pytest.raises(CodecError, match="does not match the exact"):
            codec.decode(_pkt(b"\0" * 5), _ty("ip", "tcp", "int"))

    def test_wrong_transport(self):
        with pytest.raises(CodecError, match="no udp header"):
            codec.decode(_pkt(b""), _ty("ip", "udp", "blob"))

    def test_raw_type_rejects_transport_header(self):
        with pytest.raises(CodecError, match="is raw"):
            codec.decode(_pkt(b""), _ty("ip", "blob"))

    def test_exact_payload_still_decodes(self):
        value = codec.decode(_pkt(b"\x00\x00\x00\x07"),
                             _ty("ip", "tcp", "int"))
        assert value[2] == 7


class TestMakeDecoder:
    def test_truncated_payload(self):
        dec = codec.make_decoder(_ty("ip", "tcp", "int", "blob"))
        with pytest.raises(CodecError, match="shorter than"):
            dec(_pkt(b"\x01"))

    def test_tailless_oversize_payload(self):
        dec = codec.make_decoder(_ty("ip", "tcp", "bool"))
        with pytest.raises(CodecError, match="does not match the exact"):
            dec(_pkt(b"\x01\x02"))

    def test_raw_layout_guarded_too(self):
        dec = codec.make_decoder(_ty("ip", "int"))
        with pytest.raises(CodecError, match="shorter than"):
            dec(_pkt(b"\x00", transport=None, proto=PROTO_RAW))


class TestBatchDecoder:
    def test_tail_layout_short_payload(self):
        bd = codec.make_batch_decoder(_ty("ip", "tcp", "int", "blob"))
        batch = bd.batch([_pkt(b"\x00\x00\x00\x01full"), _pkt(b"\x00")])
        with pytest.raises(CodecError, match="shorter than the fixed"):
            batch.soa()

    def test_tailless_stride_mismatch(self):
        bd = codec.make_batch_decoder(_ty("ip", "tcp", "int"))
        batch = bd.batch([_pkt(b"\x00\x00\x00\x01"), _pkt(b"\x00\x00")])
        with pytest.raises(CodecError, match="stride mismatch"):
            batch.soa()

    def test_tailless_count_mismatch(self):
        # Compensating corruption: joined length is a stride multiple
        # but packet count disagrees — the count guard catches it.
        bd = codec.make_batch_decoder(_ty("ip", "tcp", "int"))
        batch = bd.batch([_pkt(b"\x00" * 8), _pkt(b"")])
        with pytest.raises(CodecError, match="stride mismatch"):
            batch.soa()

    def test_clean_batch_still_decodes(self):
        bd = codec.make_batch_decoder(_ty("ip", "tcp", "int", "blob"))
        batch = bd.batch([_pkt(b"\x00\x00\x00\x05hi"),
                          _pkt(b"\x00\x00\x00\x06yo")])
        assert batch.column(2) == [5, 6]
        assert batch.column(3) == [b"hi", b"yo"]


class TestEncode:
    @pytest.mark.parametrize("n", [2 ** 31, -(2 ** 31) - 1, 2 ** 63])
    def test_int_overflow(self, n):
        with pytest.raises(CodecError, match="4-byte wire encoding"):
            codec.encode((_IP, _TCP, n))

    def test_boundary_ints_fit(self):
        for n in (2 ** 31 - 1, -(2 ** 31), 0):
            pkt = codec.encode((_IP, _TCP, n))
            assert codec.decode(pkt, _ty("ip", "tcp", "int"))[2] == n


_OVERFLOWER = """
channel network(ps : int, ss : unit, p : ip*tcp*int) is
  (OnRemote(network, (#1 p, #2 p, (#3 p) + 2147483647)); (ps + 1, ss))
"""


def test_layer_contains_encode_overflow():
    """End-to-end: a program emitting an un-encodable int must be
    contained as a runtime error, not take the node down."""
    net = Network(seed=5)
    a = net.add_host("a")
    r = net.add_router("r")
    b = net.add_host("b")
    net.link(a, r)
    net.link(r, b)
    net.finalize()
    layer = PlanPLayer(r)
    layer.install(_OVERFLOWER, verify=False)
    got = []
    b.delivery_taps.append(lambda p: got.append(p))
    # decodes as int=1; 1 + 2147483647 = 2**31 overflows the encoder
    pkt = tcp_packet(a.address, b.address, 1, 80, b"\x00\x00\x00\x01")

    def fire():
        assert layer.wants(pkt, None)
        layer.process(pkt, None)
    net.sim.schedule(0.0, fire)
    net.sim.run_until_idle()
    assert r.up
    assert layer.stats.runtime_errors == 1
    # contained → standard-IP fallback forwarded the original packet
    assert len(got) == 1
