"""Property tests: wire codec round-trips for arbitrary packet shapes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import types as T
from repro.net.addresses import HostAddr
from repro.net.packet import IpHeader, TcpHeader, UdpHeader
from repro.runtime import codec

addresses = st.integers(0, 0xFFFFFFFF).map(HostAddr)
ports = st.integers(0, 65535)

def ip_headers(proto: int):
    return st.builds(IpHeader, src=addresses, dst=addresses,
                     ttl=st.integers(1, 64), proto=st.just(proto))


tcp_ip = ip_headers(6)
udp_ip = ip_headers(17)
tcp_headers = st.builds(TcpHeader, src_port=ports, dst_port=ports,
                        seq=st.integers(0, 2**31), syn=st.booleans(),
                        fin=st.booleans())
udp_headers = st.builds(UdpHeader, src_port=ports, dst_port=ports)

payloads = st.binary(max_size=200)

#: (packet type, value strategy) pairs covering the view system.
SHAPES = [
    (T.TupleType((T.IP, T.TCP, T.BLOB)),
     st.tuples(tcp_ip, tcp_headers, payloads)),
    (T.TupleType((T.IP, T.UDP, T.BLOB)),
     st.tuples(udp_ip, udp_headers, payloads)),
    (T.TupleType((T.IP, T.TCP, T.CHAR, T.INT)),
     st.tuples(tcp_ip, tcp_headers,
               st.integers(0, 255).map(chr),
               st.integers(-2**31, 2**31 - 1))),
    (T.TupleType((T.IP, T.UDP, T.HOST, T.INT)),
     st.tuples(udp_ip, udp_headers, addresses,
               st.integers(-2**31, 2**31 - 1))),
    (T.TupleType((T.IP, T.UDP, T.BOOL, T.BLOB)),
     st.tuples(udp_ip, udp_headers, st.booleans(), payloads)),
]


@st.composite
def shaped_values(draw):
    ty, strategy = draw(st.sampled_from(SHAPES))
    return ty, draw(strategy)


@given(shaped_values())
@settings(max_examples=150, deadline=None)
def test_encode_decode_roundtrip(shape):
    """decode(encode(v)) == v for any well-typed packet value."""
    ty, value = shape
    packet = codec.encode(value)
    assert codec.matches(packet, ty)
    again = codec.decode(packet, ty)
    assert again == value


@given(shaped_values())
@settings(max_examples=100, deadline=None)
def test_encode_sets_consistent_proto(shape):
    _ty, value = shape
    packet = codec.encode(value)
    if isinstance(packet.transport, TcpHeader):
        assert packet.ip.proto == 6
    elif isinstance(packet.transport, UdpHeader):
        assert packet.ip.proto == 17


@given(st.binary(max_size=64))
@settings(max_examples=80, deadline=None)
def test_matching_is_total(raw):
    """matches() never crashes on arbitrary payload bytes."""
    packet = codec.encode((IpHeader(), UdpHeader(), raw))
    for ty, _strategy in SHAPES:
        codec.matches(packet, ty)  # must not raise
