"""Property tests: wire codec round-trips for arbitrary packet shapes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import types as T
from repro.net.addresses import HostAddr
from repro.net.packet import IpHeader, TcpHeader, UdpHeader
from repro.runtime import codec

addresses = st.integers(0, 0xFFFFFFFF).map(HostAddr)
ports = st.integers(0, 65535)

def ip_headers(proto: int):
    return st.builds(IpHeader, src=addresses, dst=addresses,
                     ttl=st.integers(1, 64), proto=st.just(proto))


tcp_ip = ip_headers(6)
udp_ip = ip_headers(17)
tcp_headers = st.builds(TcpHeader, src_port=ports, dst_port=ports,
                        seq=st.integers(0, 2**31), syn=st.booleans(),
                        fin=st.booleans())
udp_headers = st.builds(UdpHeader, src_port=ports, dst_port=ports)

payloads = st.binary(max_size=200)

#: (packet type, value strategy) pairs covering the view system.
SHAPES = [
    (T.TupleType((T.IP, T.TCP, T.BLOB)),
     st.tuples(tcp_ip, tcp_headers, payloads)),
    (T.TupleType((T.IP, T.UDP, T.BLOB)),
     st.tuples(udp_ip, udp_headers, payloads)),
    (T.TupleType((T.IP, T.TCP, T.CHAR, T.INT)),
     st.tuples(tcp_ip, tcp_headers,
               st.integers(0, 255).map(chr),
               st.integers(-2**31, 2**31 - 1))),
    (T.TupleType((T.IP, T.UDP, T.HOST, T.INT)),
     st.tuples(udp_ip, udp_headers, addresses,
               st.integers(-2**31, 2**31 - 1))),
    (T.TupleType((T.IP, T.UDP, T.BOOL, T.BLOB)),
     st.tuples(udp_ip, udp_headers, st.booleans(), payloads)),
]


@st.composite
def shaped_values(draw):
    ty, strategy = draw(st.sampled_from(SHAPES))
    return ty, draw(strategy)


@given(shaped_values())
@settings(max_examples=150, deadline=None)
def test_encode_decode_roundtrip(shape):
    """decode(encode(v)) == v for any well-typed packet value."""
    ty, value = shape
    packet = codec.encode(value)
    assert codec.matches(packet, ty)
    again = codec.decode(packet, ty)
    assert again == value


@given(shaped_values())
@settings(max_examples=100, deadline=None)
def test_encode_sets_consistent_proto(shape):
    _ty, value = shape
    packet = codec.encode(value)
    if isinstance(packet.transport, TcpHeader):
        assert packet.ip.proto == 6
    elif isinstance(packet.transport, UdpHeader):
        assert packet.ip.proto == 17


@given(st.binary(max_size=64))
@settings(max_examples=80, deadline=None)
def test_matching_is_total(raw):
    """matches() never crashes on arbitrary payload bytes."""
    packet = codec.encode((IpHeader(), UdpHeader(), raw))
    for ty, _strategy in SHAPES:
        codec.matches(packet, ty)  # must not raise


# ---------------------------------------------------------------------------
# The ASP catalog's wire contract
# ---------------------------------------------------------------------------

#: Max tail exercised by the boundary tests — a 64 KiB payload is far
#: beyond anything the experiments ship but must still round-trip.
MAX_TAIL = 64 * 1024

#: latin-1 is the wire's string charset; stay within it so the
#: round-trip is exact (encode uses errors="replace" beyond it).
_latin1_text = st.text(
    alphabet=st.characters(min_codepoint=0, max_codepoint=255),
    max_size=64)


def catalog_packet_types():
    """Every packet type declared by any catalog ASP, derived from the
    ASP sources themselves so new catalog entries are picked up."""
    from repro import asps
    sources = [
        asps.audio_router_asp(),
        asps.audio_client_asp(),
        asps.http_gateway_asp("10.0.0.1", ["10.0.0.2", "10.0.0.3"]),
        asps.image_distiller_asp(),
        asps.mpeg_monitor_asp(),
        asps.mpeg_client_asp(),
        asps.firewall_asp([23, 2049]),
        asps.content_filter_asp("X", "10.0.0.9"),
        asps.link_compressor_asp(app_port=7000),
        asps.link_decompressor_asp(app_port=7000),
    ]
    from repro.lang import parse, typecheck
    types = {}
    for source in sources:
        for decl in typecheck(parse(source)).all_channels():
            types[str(decl.packet_type)] = decl.packet_type
    return [types[key] for key in sorted(types)]


CATALOG_TYPES = catalog_packet_types()


def _view_strategy(view):
    if view == T.INT:
        return st.integers(-2**31, 2**31 - 1)
    if view == T.HOST:
        return addresses
    if view == T.CHAR:
        return st.integers(0, 255).map(chr)
    if view == T.BOOL:
        return st.booleans()
    if view == T.STRING:
        return _latin1_text
    return payloads  # blob


def _shape_strategy(packet_type):
    transport, views = codec.packet_views(packet_type)
    if transport == T.TCP:
        parts = [tcp_ip, tcp_headers]
    else:
        parts = [udp_ip, udp_headers]
    parts.extend(_view_strategy(v) for v in views)
    return st.tuples(*parts)


@st.composite
def catalog_values(draw):
    ty = draw(st.sampled_from(CATALOG_TYPES))
    return ty, draw(_shape_strategy(ty))


@given(catalog_values())
@settings(max_examples=200, deadline=None)
def test_catalog_roundtrip(shape):
    """decode(encode(v)) == v for every packet type any catalog ASP
    (audio, http, images, mpeg, filters) declares — through the generic
    decoder AND the compiled per-type dispatch plan."""
    ty, value = shape
    packet = codec.encode(value)
    assert codec.matches(packet, ty)
    assert codec.decode(packet, ty) == value
    plan = codec.dispatch_plan(ty)
    assert plan.admits(len(packet.payload))
    assert plan.decode(packet) == value


def _boundary_value(packet_type, tail):
    """A deterministic value for one catalog type with a chosen tail."""
    transport, views = codec.packet_views(packet_type)
    if transport == T.TCP:
        parts = [IpHeader(src=HostAddr(0x0A000001),
                          dst=HostAddr(0x0A000002), proto=6),
                 TcpHeader(src_port=1234, dst_port=80)]
    else:
        parts = [IpHeader(src=HostAddr(0x0A000001),
                          dst=HostAddr(0x0A000002), proto=17),
                 UdpHeader(src_port=1234, dst_port=7)]
    for view in views:
        if view == T.INT:
            parts.append(-1)
        elif view == T.HOST:
            parts.append(HostAddr(0xFFFFFFFF))
        elif view == T.CHAR:
            parts.append("\xff")
        elif view == T.BOOL:
            parts.append(True)
        elif view == T.STRING:
            parts.append(tail.decode("latin-1"))
        else:
            parts.append(tail)
    return tuple(parts)


def test_catalog_empty_and_max_tails():
    """The boundary payloads — empty tail and a 64 KiB tail — round-trip
    for every catalog packet type (fixed layouts like ip*udp*host*int
    have nothing to vary, so one canonical value covers them)."""
    for ty in CATALOG_TYPES:
        _transport, views = codec.packet_views(ty)
        if views and views[-1] in (T.BLOB, T.STRING):
            tails = (b"", b"\x00", bytes(range(256)) * (MAX_TAIL // 256))
        else:
            tails = (b"",)  # no tail view; _boundary_value ignores it
        for tail in tails:
            value = _boundary_value(ty, tail)
            packet = codec.encode(value)
            assert codec.decode(packet, ty) == value
            assert codec.dispatch_plan(ty).decode(packet) == value
