"""Event log unit tests: emission, clocking, bounds, serialisation."""

import io
import json

from repro.obs.events import EventLog, EventRecord


def sim_clocked(start: float = 0.0) -> tuple[EventLog, list[float]]:
    """An EventLog driven by a fake simulated clock we can advance."""
    now = [start]
    return EventLog(clock=lambda: now[0]), now


class TestEmission:
    def test_records_carry_clock_time_and_fields(self):
        log, now = sim_clocked()
        now[0] = 1.25
        log.emit("drop", node="r1", reason="queue", site="a-r1")
        (event,) = log.events
        assert event.t == 1.25
        assert event.kind == "drop"
        assert event.node == "r1"
        assert event.data == {"reason": "queue", "site": "a-r1"}

    def test_disabled_log_records_nothing(self):
        log, _now = sim_clocked()
        log.enabled = False
        log.emit("fault")
        assert len(log) == 0 and log.dropped == 0

    def test_bounded_buffer_counts_overflow(self):
        log = EventLog(clock=lambda: 0.0, max_events=3)
        for i in range(5):
            log.emit("send", uid=i)
        assert len(log) == 3
        assert log.dropped == 2
        # The oldest events are the ones kept (head of the stream).
        assert [e.data["uid"] for e in log.events] == [0, 1, 2]

    def test_clear_resets_buffer_and_dropped(self):
        log = EventLog(clock=lambda: 0.0, max_events=1)
        log.emit("a")
        log.emit("b")
        log.clear()
        assert len(log) == 0 and log.dropped == 0


class TestQueries:
    def test_filter_by_kind_node_predicate(self):
        log, now = sim_clocked()
        log.emit("drop", node="r1", reason="queue")
        now[0] = 2.0
        log.emit("drop", node="r2", reason="ttl")
        log.emit("fault", detail="link down")
        assert len(log.filter(kind="drop")) == 2
        assert [e.node for e in log.filter(node="r2")] == ["r2"]
        late = log.filter(predicate=lambda e: e.t >= 2.0)
        assert len(late) == 2

    def test_counts_by_kind(self):
        log, _now = sim_clocked()
        log.emit("drop")
        log.emit("drop")
        log.emit("jit")
        assert log.counts() == {"drop": 2, "jit": 1}


class TestSerialisation:
    def test_record_to_dict_merges_data(self):
        record = EventRecord(t=0.5, kind="deploy", node="mgr",
                             data={"action": "push"})
        assert record.to_dict() == {"t": 0.5, "kind": "deploy",
                                    "node": "mgr", "action": "push"}

    def test_to_dict_omits_empty_node(self):
        record = EventRecord(t=0.0, kind="jit")
        assert "node" not in record.to_dict()

    def test_jsonl_round_trips(self):
        log, _now = sim_clocked()
        log.emit("drop", node="r1", reason="queue")
        log.emit("fault", detail="x")
        lines = log.to_jsonl().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [p["kind"] for p in parsed] == ["drop", "fault"]
        assert parsed[0]["reason"] == "queue"

    def test_to_jsonl_kind_filter_and_limit(self):
        log, _now = sim_clocked()
        for i in range(4):
            log.emit("send", uid=i)
        log.emit("drop", uid=99)
        lines = log.to_jsonl(kind="send", limit=2).splitlines()
        assert [json.loads(line)["uid"] for line in lines] == [2, 3]

    def test_dump_writes_jsonl_and_returns_count(self):
        log, _now = sim_clocked()
        log.emit("a")
        log.emit("b")
        sink = io.StringIO()
        assert log.dump(sink) == 2
        assert len(sink.getvalue().splitlines()) == 2
