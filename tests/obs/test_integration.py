"""Observability wired through the network stack, end to end."""

from repro.net import Network
from repro.net.packet import udp_packet
from repro.net.tcp import TcpError
from repro.runtime import PlanPLayer

ECHO_ASP = """\
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps + 1, ss))
"""


def line_net(**link_kwargs):
    net = Network(seed=9)
    a = net.add_host("a")
    r = net.add_router("r")
    b = net.add_host("b")
    net.link(a, r)
    net.link(r, b, **link_kwargs)
    net.finalize()
    return net, a, r, b


class TestSnapshotShape:
    def test_snapshot_has_node_link_and_sim_keys(self):
        net, a, r, b = line_net()
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        net.run()
        snap = net.metrics_snapshot(include_global=False)
        assert snap["node.b.delivered"] == 1
        assert snap["node.r.forwarded"] == 1
        assert snap["link.a--r.packets_sent"] >= 1
        assert snap["sim.events_processed"] > 0
        assert snap["sim.now"] == net.sim.now
        assert snap["events.logged"] == 0  # nothing eventful happened

    def test_global_scope_merged_under_prefix(self):
        net, _a, _r, _b = line_net()
        snap = net.metrics_snapshot()
        assert any(key.startswith("global.program_cache.")
                   for key in snap)
        assert not any(key.startswith("global.global.") for key in snap)

    def test_include_global_false_excludes_prefix(self):
        net, _a, _r, _b = line_net()
        snap = net.metrics_snapshot(include_global=False)
        assert not any(key.startswith("global.") for key in snap)

    def test_shared_obs_keeps_first_networks_clock_and_sim(self):
        """A second network on one scope must not hijack the event
        clock or the 'sim' stats of the first; it publishes its own
        scheduler under 'sim2'."""
        from repro.obs import Observability

        obs = Observability()
        first = Network(seed=1, obs=obs)
        a = first.add_host("a")
        b = first.add_host("b")
        first.link(a, b)
        first.finalize()
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        first.run()
        second = Network(seed=2, obs=obs)

        assert obs.events.clock() == first.sim.now  # not second's 0.0
        snap = obs.snapshot()
        assert snap["sim.now"] == first.sim.now
        assert snap["sim2.now"] == second.sim.now


class TestDropAccounting:
    def test_queue_drops_count_and_log(self):
        net, a, r, b = line_net(bandwidth=64_000, queue_limit=2)
        for _ in range(10):
            a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x" * 972))
        net.run()
        snap = net.metrics_snapshot(include_global=False)
        assert snap["drops_total"] > 0
        drops = net.obs.events.filter(kind="drop")
        assert snap["drops_total"] == len(drops)
        (reasons, sites) = ({e.data["reason"] for e in drops},
                            {e.data["site"] for e in drops})
        assert reasons == {"queue"}
        assert sites == {"r--b"}  # the bottleneck link, by name
        # Event timestamps are simulated time, inside the run's span.
        assert all(0.0 <= e.t <= net.sim.now for e in drops)

    def test_node_drop_reason_no_route(self):
        from repro.net.addresses import HostAddr

        net, a, _r, _b = line_net()
        stranger = udp_packet(a.address, HostAddr.parse("99.9.9.9"),
                              1, 2, b"x")
        a.ip_send(stranger)
        net.run()
        drops = net.obs.events.filter(kind="drop")
        assert len(drops) == 1
        assert drops[0].data["reason"] == "no-route"
        assert drops[0].data["site"] == "node"


class TestFaultEvents:
    def test_link_flap_logged_and_counted(self):
        net, a, r, b = line_net()
        link = net.media[0]
        net.faults.link_down(link)
        net.faults.link_up(link)
        snap = net.metrics_snapshot(include_global=False)
        assert snap["faults_total"] == 2
        details = [e.data["detail"]
                   for e in net.obs.events.filter(kind="fault")]
        assert any("down" in d for d in details)
        assert any("up" in d or "restored" in d for d in details)


class TestDeployEvents:
    def test_push_milestones_logged(self):
        from repro.asps import audio_router_asp
        from repro.runtime.netdeploy import (DeploymentManager,
                                             DeploymentService)

        net = Network(seed=7)
        mgr = net.add_host("mgr")
        router = net.add_router("r1")
        net.link(mgr, router)
        net.finalize()
        DeploymentService(net, router)
        manager = DeploymentManager(net, mgr)
        manager.push(audio_router_asp(), [router.address])
        net.run(until=5.0)

        actions = [e.data["action"]
                   for e in net.obs.events.filter(kind="deploy")]
        assert "push" in actions
        assert "install" in actions
        assert "push-ok" in actions
        snap = net.metrics_snapshot(include_global=False)
        assert snap["deploy.manager.pushes"] == 1
        assert snap["deploy.service.r1.installed"] == 1


class TestAspProfiling:
    def test_opt_in_histogram_records_per_packet(self):
        net, a, r, b = line_net()
        layer = PlanPLayer(r)
        layer.install(ECHO_ASP)
        packet = udp_packet(a.address, b.address, 1, 2, b"x")
        assert layer.wants(packet, None)

        # Off by default: processing records nothing.
        layer.process(packet, None)
        snap = net.metrics_snapshot(include_global=False)
        assert "asp.process_ms.count" not in snap

        histogram = layer.enable_profiling()
        assert layer.enable_profiling() is histogram  # idempotent
        layer.process(packet, None)
        layer.process(packet, None)
        snap = net.metrics_snapshot(include_global=False)
        assert snap["asp.process_ms.count"] == 2
        assert snap["asp.process_ms.mean"] >= 0.0

    def test_profiling_without_network_uses_private_histogram(self):
        from repro.net.node import Host
        from repro.net.sim import Simulator

        layer = PlanPLayer(Host(Simulator(), "lone"))
        layer.install(ECHO_ASP)
        histogram = layer.enable_profiling()
        layer.process(udp_packet("10.0.0.1", "10.0.0.2", 1, 2, b"x"),
                      None)
        assert histogram.count == 1


class TestErrorCounting:
    def test_http_server_counts_peer_failures(self):
        from repro.apps.http.server import HttpServer

        net, a, _r, b = line_net()
        server = HttpServer(net, b, {"/x": 100})
        server._count_error("/x", TcpError("connection reset"))
        snap = net.metrics_snapshot(include_global=False)
        assert snap["http.errors_total"] == 1
        assert server.errors == 1
        (event,) = net.obs.events.filter(kind="error")
        assert event.data["where"] == "http-server"
        assert event.data["path"] == "/x"

    def test_image_client_counts_corrupt_blob(self):
        from repro.apps.images.service import ImageClient

        net, a, _r, b = line_net()
        client = ImageClient(net, a, b.address, originals={"pic": b"ok"})
        client._pending.append(("pic", 0.0))
        # A blob that is not valid SIMG: decode fails, the client counts
        # it, and the experiment keeps running.
        client._on_reply(b"\x00garbage", b.address, 7)
        assert client.failures == 1
        snap = net.metrics_snapshot(include_global=False)
        assert snap["images.errors_total"] == 1
        (event,) = net.obs.events.filter(kind="error")
        assert event.data["where"] == "image-client"
        assert event.data["image"] == "pic"

    def test_experiment_results_carry_metrics(self):
        from repro.apps.images import run_image_experiment

        result = run_image_experiment(distillation=False)
        assert result.metrics  # snapshot taken at end of run
        assert result.metrics["sim.now"] > 0.0
        assert any(key.startswith("node.") for key in result.metrics)


class TestLifecycleSummary:
    """The ``obsdump --lifecycle`` fold over an event list."""

    EVENTS = [
        {"kind": "deploy", "action": "install", "node": "r0"},
        {"kind": "deploy", "action": "install", "node": "r1"},
        {"kind": "rollout", "action": "stage"},
        {"kind": "rollout", "action": "canary"},
        {"kind": "quarantine", "action": "trip", "node": "r0"},
        {"kind": "rollout", "action": "abort"},
        {"kind": "rollback", "action": "start"},
        {"kind": "rollback", "action": "node", "node": "r0",
         "to_generation": 1},
        {"kind": "rollback", "action": "done"},
        {"kind": "quarantine", "action": "half-open", "node": "r1"},
        {"kind": "quarantine", "action": "close", "node": "r1"},
        {"kind": "deploy", "action": "restore", "node": "r0"},
        {"kind": "rollout", "action": "stage"},
        {"kind": "rollout", "action": "promote"},
        {"kind": "rollout", "action": "stage"},
        {"kind": "rollout", "action": "veto", "rollout": 3,
         "sha": "abc123", "against": "def456", "nodes": 2,
         "verdict": "incompatible: [field-layout-changed] ..."},
        {"kind": "rollback", "action": "skip", "sha": "abc123",
         "node": "", "nodes": 0,
         "reason": "no managed node runs this generation"},
    ]

    def test_fold(self):
        from repro.tools.obsdump import lifecycle_summary

        summary = lifecycle_summary(self.EVENTS)
        assert summary["totals"] == {"rollouts": 3, "promoted": 1,
                                     "aborted": 1, "vetoed": 1,
                                     "fleet_rollbacks": 1,
                                     "rollback_skips": 1}
        assert summary["vetoes"] == [{
            "rollout": 3, "sha": "abc123", "against": "def456",
            "nodes": 2,
            "verdict": "incompatible: [field-layout-changed] ..."}]
        assert summary["nodes"]["r0"] == {
            "installs": 2, "trips": 1, "half_opens": 0, "closes": 0,
            "rollbacks": 1, "generation": 1}
        assert summary["nodes"]["r1"]["half_opens"] == 1
        assert summary["nodes"]["r1"]["closes"] == 1

    def test_fold_matches_live_drill(self):
        from repro.experiments.chaos import run_chaos_experiment
        from repro.obs import Observability
        from repro.tools.obsdump import lifecycle_summary

        obs = Observability()
        run_chaos_experiment(profile="drill", n_routers=4,
                             duration=8.0, seed=5, obs=obs)
        events = [r.to_dict() for r in obs.events.filter()]
        summary = lifecycle_summary(events)
        assert summary["totals"]["fleet_rollbacks"] >= 1
        assert len(summary["nodes"]) >= 4
        assert all(entry["generation"] == 1
                   for name, entry in summary["nodes"].items()
                   if entry["rollbacks"])


class TestShardSummary:
    """The ``obsdump scale --shards`` per-segment fold."""

    def test_summary_from_live_sharded_run(self):
        from repro.experiments.scale import build_scale_net, scale_until
        from repro.tools.obsdump import shard_summary

        params = dict(n_clusters=4, hosts_per_cluster=3,
                      packets_per_host=4)
        net = build_scale_net(params=params, seed=7, shard_segments=2)
        net._shard.trace_boundary = True
        net.run(until=scale_until(params))
        summary = shard_summary(net)
        assert summary["windows"] >= 1
        assert summary["lookahead"] == 0.01
        assert len(summary["segments"]) == 2
        assert sum(s["nodes"] for s in summary["segments"]) == 12
        assert all(s["events_processed"] > 0
                   for s in summary["segments"])
        # crossings balance: everything sent is received somewhere
        assert sum(s["boundary_out"] for s in summary["segments"]) \
            == sum(s["boundary_in"] for s in summary["segments"]) > 0
        # tracing emitted one shard-boundary event per crossing
        crossings = [r for r in net.obs.events.filter()
                     if r.to_dict().get("kind") == "shard-boundary"]
        assert len(crossings) \
            == sum(s["boundary_out"] for s in summary["segments"])

    def test_serial_run_summarizes_as_unsharded(self):
        from repro.experiments.scale import build_scale_net
        from repro.tools.obsdump import shard_summary

        net = build_scale_net(
            params=dict(n_clusters=2, hosts_per_cluster=2,
                        packets_per_host=1), seed=7)
        assert shard_summary(net)["segments"] == []
