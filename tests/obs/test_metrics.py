"""Metrics registry unit tests: instruments, callbacks, snapshots."""

import pytest

from repro.obs import GLOBAL, Observability, reset_global
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               _flatten)
from repro.obs.spans import Timer, span


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_set_and_fn(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        assert gauge.value == 3.5
        backing = [7]
        gauge.set_fn(lambda: backing[0])
        backing[0] = 9
        assert gauge.value == 9
        gauge.set(1)  # a direct set clears the callable
        assert gauge.value == 1

    def test_histogram_summary(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 6.0):
            histogram.observe(value)
        assert histogram.summary() == {
            "count": 3, "sum": 9.0, "min": 1.0, "max": 6.0, "mean": 3.0}

    def test_empty_histogram_summary_is_zeroes(self):
        assert Histogram("h").summary() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}

    def test_histogram_time_observes_ms(self):
        histogram = Histogram("h_ms")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert 0.0 <= histogram.max < 1000.0  # milliseconds, not seconds


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_flattens_everything(self):
        registry = MetricsRegistry()
        registry.counter("packets").inc(4)
        registry.gauge("depth").set(2)
        registry.histogram("lat_ms").observe(5.0)
        registry.register("stats", lambda: {"sent": 1,
                                            "nested": {"lost": 2}})
        snap = registry.snapshot()
        assert snap["packets"] == 4
        assert snap["depth"] == 2
        assert snap["lat_ms.count"] == 1
        assert snap["lat_ms.mean"] == 5.0
        assert snap["stats.sent"] == 1
        assert snap["stats.nested.lost"] == 2

    def test_callback_runs_only_at_snapshot_time(self):
        registry = MetricsRegistry()
        calls = []
        registry.register("lazy", lambda: calls.append(1) or {"x": 1})
        assert calls == []
        registry.snapshot()
        registry.snapshot()
        assert len(calls) == 2

    def test_reregister_replaces_and_unregister_removes(self):
        registry = MetricsRegistry()
        registry.register("s", lambda: {"v": 1})
        registry.register("s", lambda: {"v": 2})
        assert registry.snapshot() == {"s.v": 2}
        registry.unregister("s")
        assert registry.snapshot() == {}

    def test_reset_values_keeps_callbacks(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(10)
        registry.register("s", lambda: {"v": 5})
        registry.reset_values()
        snap = registry.snapshot()
        assert "n" not in snap          # instrument gone
        assert snap["s.v"] == 5          # callback survived

    def test_clear_removes_callbacks_too(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.register("s", lambda: 1)
        registry.clear()
        assert registry.snapshot() == {}

    def test_flatten_scalar_under_prefix(self):
        out = {}
        _flatten("top", 3, out)
        assert out == {"top": 3}


class TestSpans:
    def test_registry_span_lands_in_named_histogram(self):
        registry = MetricsRegistry()
        with registry.span("stage_ms"):
            pass
        assert registry.snapshot()["stage_ms.count"] == 1

    def test_timer_elapsed_readable_after_block(self):
        with Timer() as timer:
            pass
        assert timer.elapsed_s >= 0.0
        assert timer.elapsed_ms == pytest.approx(timer.elapsed_s * 1000)

    def test_timer_on_exit_callback(self):
        seen = []
        with Timer(on_exit=seen.append):
            pass
        assert len(seen) == 1

    def test_timer_records_even_when_body_raises(self):
        histogram = Histogram("h")
        with pytest.raises(RuntimeError):
            with histogram.time():
                raise RuntimeError("boom")
        assert histogram.count == 1

    def test_module_span_defaults_to_global(self):
        reset_global()
        with span("unit_test_span_ms"):
            pass
        assert GLOBAL.snapshot()["unit_test_span_ms.count"] == 1
        reset_global()

    def test_span_with_explicit_registry(self):
        registry = MetricsRegistry()
        with span("x_ms", registry):
            pass
        assert registry.snapshot()["x_ms.count"] == 1


class TestObservabilityScope:
    def test_snapshot_includes_event_counters(self):
        obs = Observability(clock=lambda: 1.0)
        obs.events.emit("fault", detail="x")
        snap = obs.snapshot()
        assert snap["events.logged"] == 1
        assert snap["events.dropped"] == 0

    def test_reset_global_keeps_import_time_callbacks(self):
        # The program cache registers its stats callback at import time;
        # a reset must not orphan it (tests call reset_global freely).
        import repro.jit.pipeline  # noqa: F401  (triggers registration)

        reset_global()
        assert any(key.startswith("program_cache.")
                   for key in GLOBAL.snapshot())
