"""Property: interpreter ≡ closure JIT ≡ source JIT.

This is the reproduction's core correctness property for the paper's
central mechanism — a JIT *derived from* the interpreter must preserve
its semantics exactly.  Hypothesis generates random well-typed programs
(see tests/strategies.py) and the three engines must agree on the final
protocol state, the emission stream and console output.
"""

from hypothesis import given, settings

from repro.interp import RecordingContext
from repro.interp.values import default_value
from repro.jit import make_engine
from repro.lang import parse, typecheck

from ..conftest import tcp_packet_value
from ..strategies import programs

PACKETS = [tcp_packet_value(payload=b"abcdef"),
           tcp_packet_value(sport=1, dport=443, payload=b""),
           tcp_packet_value(payload=b"zz", syn=True)]


def run_engine(info, backend):
    engine = make_engine(info, backend, RecordingContext())
    decl = info.channels["network"][0]
    ctx = RecordingContext(seed=7)
    ps = default_value(decl.protocol_state_type)
    ss = engine.initial_channel_state(decl, ctx)
    for packet in PACKETS:
        ps, ss = engine.run_channel(decl, ps, ss, packet, ctx)
    return ps, [(e.kind, e.channel, e.packet_value)
                for e in ctx.emissions], ctx.printed


@given(programs())
@settings(max_examples=120, deadline=None)
def test_engines_agree_on_random_programs(source):
    info = typecheck(parse(source))
    interp = run_engine(info, "interpreter")
    closure = run_engine(info, "closure")
    compiled = run_engine(info, "source")
    assert closure == interp
    assert compiled == interp
