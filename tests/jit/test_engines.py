"""JIT backend unit tests: both backends match the interpreter."""

import pytest

from repro.interp import Interpreter, RecordingContext
from repro.jit import make_engine
from repro.lang import PlanPRuntimeError, parse, typecheck

from ..conftest import tcp_packet_value, udp_packet_value

BACKENDS = ("interpreter", "closure", "source")


def engines_for(source: str):
    info = typecheck(parse(source))
    return info, {name: make_engine(info, name, RecordingContext())
                  for name in BACKENDS}


def run_all(source: str, packets, channel="network", overload=0):
    """Run the same packets through all three engines; return per-engine
    (final ps, emissions-as-tuples, printed)."""
    info, engines = engines_for(source)
    decl = info.channels[channel][overload]
    results = {}
    for name, engine in engines.items():
        ctx = RecordingContext(seed=99)
        ps = 0 if decl.protocol_state_type.__class__.__name__ \
            == "IntType" else None
        from repro.interp.values import default_value

        ps = default_value(decl.protocol_state_type)
        ss = engine.initial_channel_state(decl, ctx)
        for packet in packets:
            ps, ss = engine.run_channel(decl, ps, ss, packet, ctx)
        results[name] = (ps, [(e.kind, e.channel, e.packet_value)
                              for e in ctx.emissions], ctx.printed)
    return results


def assert_agree(source: str, packets, **kwargs):
    results = run_all(source, packets, **kwargs)
    baseline = results["interpreter"]
    for name in ("closure", "source"):
        assert results[name] == baseline, \
            f"{name} diverges from interpreter"


class TestBasicEquivalence:
    def test_forwarding(self):
        src = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(OnRemote(network, p); (ps + 1, ss))")
        assert_agree(src, [tcp_packet_value()] * 3)

    def test_arithmetic_and_division(self):
        src = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(OnRemote(network, p); "
               "((ps * 7 + 3) / 2 - (0 - ps) mod 5, ss))")
        assert_agree(src, [tcp_packet_value()] * 5)

    def test_short_circuit_effects(self):
        # The right operand of andalso prints; engines must agree on
        # whether it executed.
        src = ('fun noisy(x : int) : bool = (print("side"); x > 0)\n'
               "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(OnRemote(network, p); "
               "(if ps > 1 andalso noisy(ps) then ps + 10 else ps + 1, "
               "ss))")
        assert_agree(src, [tcp_packet_value()] * 4)

    def test_table_state(self):
        src = ("channel network(ps : int, ss : (int) hash_table, "
               "p : ip*tcp*blob) initstate mkTable(4) is "
               "(tableSet(ss, tcpSrc(#2 p), "
               "tableGetDefault(ss, tcpSrc(#2 p), 0) + 1); "
               "OnRemote(network, p); "
               "(tableGetDefault(ss, tcpSrc(#2 p), 0), ss))")
        packets = [tcp_packet_value(sport=s) for s in (1, 2, 1, 1, 2)]
        assert_agree(src, packets)

    def test_exceptions_and_handlers(self):
        src = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(OnRemote(network, p); "
               "(try blobByte(#3 p, 100) handle Subscript => ps + 1, ss))")
        assert_agree(src, [tcp_packet_value(payload=b"xy")] * 2)

    def test_raise_propagates_identically(self):
        src = ("exception Boom\n"
               "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(OnRemote(network, p); "
               "(if ps > 0 then raise Boom else ps + 1, ss))")
        info, engines = engines_for(src)
        decl = info.channels["network"][0]
        for name, engine in engines.items():
            ctx = RecordingContext()
            ps, ss = engine.run_channel(decl, 0, None, tcp_packet_value(),
                                        ctx)
            with pytest.raises(PlanPRuntimeError) as err:
                engine.run_channel(decl, ps, ss, tcp_packet_value(), ctx)
            assert err.value.exception_name == "Boom", name

    def test_host_literals(self):
        src = ("val mirror : host = 172.16.0.9\n"
               "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(OnRemote(network, (ipDestSet(#1 p, mirror), #2 p, #3 p));"
               " (ps, ss))")
        assert_agree(src, [tcp_packet_value()])

    def test_string_building(self):
        src = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               '(print("n=" ^ intToString(ps) ^ "!"); '
               "OnRemote(network, p); (ps + 1, ss))")
        assert_agree(src, [tcp_packet_value()] * 3)

    def test_overloaded_channels(self):
        src = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(OnRemote(network, p); (ps + 1, ss))\n"
               "channel network(ps : int, ss : unit, q : ip*udp*blob) is "
               "(OnRemote(network, q); (ps + 100, ss))")
        assert_agree(src, [tcp_packet_value()], overload=0)
        assert_agree(src, [udp_packet_value()], overload=1)

    def test_random_streams_agree_across_engines(self):
        src = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(OnRemote(network, p); (ps + random(1000), ss))")
        assert_agree(src, [tcp_packet_value()] * 4)

    def test_lists(self):
        src = ("channel network(ps : int, ss : (int) list, "
               "p : ip*tcp*blob) is "
               "(OnRemote(network, p); (listLen(ps :: ss), ps :: ss))")
        assert_agree(src, [tcp_packet_value()] * 3)

    def test_sibling_lets_reusing_a_name(self):
        # Fuzzer-found: two sibling lets binding the same name lower to
        # two assignments of one Python local, so the first let's result
        # must be pinned to a temporary before the second let clobbers
        # it.  The source engine used to return the *second* binding's
        # value as the first tuple element.
        src = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "((let val v1 : int = ps + 1 in v1 end), "
               "(let val v1 : unit = () in ss end))")
        assert_agree(src, [tcp_packet_value()] * 3)

    def test_let_shadowing_a_parameter(self):
        # Same clobber hazard when the reused name is a channel
        # parameter: `let val ps = ...` reassigns L_ps, so a pinned read
        # of the parameter must happen before the rebinding runs.
        src = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(ps + (let val ps : int = 100 in ps end), ss)")
        assert_agree(src, [tcp_packet_value()] * 3)


class TestShippedAsps:
    """The five paper ASPs produce identical behaviour on all engines."""

    @pytest.mark.parametrize("maker", ["audio_router", "audio_client",
                                       "http_gateway"])
    def test_asp_equivalence(self, maker):
        from repro import asps

        if maker == "audio_router":
            src = asps.audio_router_asp()
            from .audio_packets import audio_packets

            packets = audio_packets()
        elif maker == "audio_client":
            src = asps.audio_client_asp()
            from .audio_packets import audio_packets

            packets = audio_packets()
        else:
            src = asps.http_gateway_asp("10.0.1.2",
                                        ["10.0.2.2", "10.0.3.2"])
            packets = [tcp_packet_value(dst="10.0.1.2", sport=s, dport=80,
                                        syn=(i == 0))
                       for i, s in enumerate([7, 7, 8, 7])]
        assert_agree(src, packets)


class TestCodegenArtifacts:
    def test_generated_source_is_python(self):
        from repro.jit.codegen import CompiledSourceEngine

        src = ("fun f(x : int) : int = x + 1\n"
               "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(OnRemote(network, p); (f(ps), ss))")
        info = typecheck(parse(src))
        engine = CompiledSourceEngine(info, RecordingContext())
        compile(engine.generated_source, "<check>", "exec")  # re-parses
        assert "def F_f(" in engine.generated_source
        assert "def C_network_0(" in engine.generated_source

    def test_prime_identifiers_mangled(self):
        src = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(let val x' : int = ps + 1 in "
               "(OnRemote(network, p); (x', ss)) end)")
        assert_agree(src, [tcp_packet_value()])

    def test_codegen_time_reported(self):
        from repro.jit import load_program

        loaded = load_program(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is\n"
            "  (OnRemote(network, p); (ps, ss))\n"
            "-- a comment line does not count\n", backend="source")
        assert loaded.codegen_ms >= 0
        assert loaded.source_lines == 2
