"""Shared audio packet fixtures for JIT tests."""

from repro.apps.audio.codec import encode_frame, generate_pcm_stereo16
from repro.net.addresses import HostAddr
from repro.net.packet import IpHeader, UdpHeader


def audio_packets(n: int = 3) -> list[tuple]:
    packets = []
    for seq in range(n):
        pcm = generate_pcm_stereo16(seq, 32)
        payload = encode_frame(0, seq, pcm)
        packets.append((
            IpHeader(src=HostAddr.parse("10.0.0.1"),
                     dst=HostAddr.parse("224.1.1.1")),
            UdpHeader(src_port=5000, dst_port=7000),
            payload))
    return packets
