"""Differential property: the tier-3 batch loop ≡ the serial loop.

For random well-typed programs and random small packet streams, folding
the stream through ``run_channel_batch`` (source JIT's generated batch
loop, the closure JIT's batch fold, and the generic ``run_rows`` driver
over the interpreter) must produce exactly what a per-packet
``run_channel`` loop produces: the same final protocol state, the same
emission stream in the same order, the same console output — and on a
faulting row, the same committed prefix plus the same error, surfaced
through the :class:`~repro.jit.batching.BatchFault` contract.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import RecordingContext
from repro.interp.values import default_value
from repro.jit import make_engine
from repro.jit.batching import BatchFault, run_rows
from repro.lang import parse, typecheck
from repro.runtime import codec

from ..conftest import tcp_packet_value
from ..strategies import programs

#: payload lengths the generated guards care about (blobLen appears in
#: the program strategy's integer leaves)
_payloads = st.lists(
    st.binary(max_size=12), min_size=0, max_size=12)


def _wire_stream(payloads):
    """Encode one wire packet per payload; the stream exercises both
    the batch decoder and the engines' dispatch of ip*tcp*blob."""
    return [codec.encode(tcp_packet_value(payload=p, dport=80 + i % 3,
                                          syn=bool(i % 2)))
            for i, p in enumerate(payloads)]


def _batch_for(info, packets):
    decl = info.channels["network"][0]
    plan = codec.dispatch_plan(decl.packet_type)
    assert plan is not None
    return decl, plan.batch_decoder().batch(packets)


def _serial(info, backend, packets):
    engine = make_engine(info, backend, RecordingContext())
    decl = info.channels["network"][0]
    ctx = RecordingContext(seed=7)
    ps = default_value(decl.protocol_state_type)
    ss = engine.initial_channel_state(decl, ctx)
    outcome = None
    for packet in packets:
        value = codec.decode(packet, decl.packet_type)
        try:
            ps, ss = engine.run_channel(decl, ps, ss, value, ctx)
        except Exception as err:
            outcome = type(err).__name__
            break
    return (ps, ss, outcome,
            [(e.kind, e.channel, e.packet_value) for e in ctx.emissions],
            ctx.printed)


def _batched(info, backend, packets):
    engine = make_engine(info, backend, RecordingContext())
    decl, batch = _batch_for(info, packets)
    ctx = RecordingContext(seed=7)
    ps = default_value(decl.protocol_state_type)
    ss = engine.initial_channel_state(decl, ctx)
    outcome = None
    try:
        if hasattr(engine, "run_channel_batch"):
            ps, ss = engine.run_channel_batch(decl, ps, ss, batch, ctx)
        else:
            ps, ss = run_rows(engine.run_channel, decl, ps, ss, batch,
                              ctx)
    except BatchFault as fault:
        # A fault commits the prefix: states entering the faulted row.
        ps, ss = fault.ps, fault.ss
        outcome = type(fault.err).__name__
    return (ps, ss, outcome,
            [(e.kind, e.channel, e.packet_value) for e in ctx.emissions],
            ctx.printed)


@given(source=programs(), payloads=_payloads)
@settings(max_examples=80, deadline=None)
def test_batch_tiers_agree_with_serial(source, payloads):
    info = typecheck(parse(source))
    packets = _wire_stream(payloads)
    serial = _serial(info, "interpreter", packets)
    for backend in ("interpreter", "closure", "source"):
        assert _batched(info, backend, packets) == serial, backend


#: Raises DivideByZero on (and only on) the empty-payload row; every
#: other row forwards.  The division guards OnRemote, so the faulting
#: row must emit nothing.
_FAULTING = """
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (let val q : int = ps / blobLen(#3 p) in
     (OnRemote(network, p); (ps + q + 1, ss)) end)
"""


@pytest.mark.parametrize("backend", ["interpreter", "closure", "source"])
def test_faulting_row_matches_serial_prefix(backend):
    info = typecheck(parse(_FAULTING))
    payloads = [b"abc", b"xy", b"", b"tail"]  # fault at row 2
    packets = _wire_stream(payloads)
    serial = _serial(info, "interpreter", packets)
    assert serial[2] == "PlanPRuntimeError"
    assert len(serial[3]) == 2  # two rows forwarded before the fault

    engine = make_engine(info, backend, RecordingContext())
    decl, batch = _batch_for(info, packets)
    ctx = RecordingContext(seed=7)
    ps = default_value(decl.protocol_state_type)
    ss = engine.initial_channel_state(decl, ctx)
    run = getattr(engine, "run_channel_batch", None)
    with pytest.raises(BatchFault) as exc:
        if run is not None:
            run(decl, ps, ss, batch, ctx)
        else:
            run_rows(engine.run_channel, decl, ps, ss, batch, ctx)
    fault = exc.value
    assert fault.index == 2
    assert (fault.ps, fault.ss) == (serial[0], serial[1])
    assert type(fault.err).__name__ == "PlanPRuntimeError"
    assert fault.err.exception_name == "DivideByZero"
    assert [(e.kind, e.channel, e.packet_value)
            for e in ctx.emissions] == serial[3]


@pytest.mark.parametrize("backend", ["closure", "source"])
def test_resume_after_fault_completes_the_tail(backend):
    """The layer's recovery protocol in miniature: re-batch the rows
    after the fault and the tail runs to completion with the committed
    states."""
    info = typecheck(parse(_FAULTING))
    packets = _wire_stream([b"abc", b"", b"xy", b"z"])
    engine = make_engine(info, backend, RecordingContext())
    decl, _ = _batch_for(info, packets)
    plan = codec.dispatch_plan(decl.packet_type)
    ctx = RecordingContext(seed=7)
    ps = default_value(decl.protocol_state_type)
    ss = engine.initial_channel_state(decl, ctx)
    with pytest.raises(BatchFault) as exc:
        engine.run_channel_batch(
            decl, ps, ss, plan.batch_decoder().batch(packets), ctx)
    fault = exc.value
    assert fault.index == 1
    tail = plan.batch_decoder().batch(packets[fault.index + 1:])
    ps, ss = engine.run_channel_batch(decl, fault.ps, fault.ss, tail,
                                      ctx)
    # Rows 0, 2, 3 ran: three forwards; ps goes 0 →(q=0/3) 1, then
    # after resume 1 →(q=1/2) 2 →(q=2/1) 5.
    assert len(ctx.emissions) == 3
    assert ps == 5
