"""The JIT is derived from the interpreter, case for case.

The paper's maintainability claim: extending the interpreter and
regenerating the specializer keeps them in sync.  This test enforces the
analogue mechanically — every AST node type the interpreter evaluates
must be handled by both JIT backends (by source inspection), so adding a
construct to one layer without the others fails CI rather than diverging
silently.
"""

import inspect

from repro import jit
from repro.interp import interpreter
from repro.jit import codegen, specializer
from repro.lang import ast

#: Every expression node of the language.
EXPR_NODES = [
    "IntLit", "BoolLit", "StringLit", "CharLit", "UnitLit", "HostLit",
    "Var", "BinOp", "UnOp", "If", "Let", "Seq", "TupleExpr", "Proj",
    "Call", "Try", "Raise",
]


def _source_of(module) -> str:
    return inspect.getsource(module)


def test_ast_exposes_all_nodes():
    for name in EXPR_NODES:
        node_type = getattr(ast, name)
        assert issubclass(node_type, ast.Expr)


def test_interpreter_covers_every_node():
    source = _source_of(interpreter)
    for name in EXPR_NODES:
        assert f"ast.{name}" in source, \
            f"interpreter does not handle ast.{name}"


def test_closure_specializer_covers_every_node():
    source = _source_of(specializer)
    for name in EXPR_NODES:
        assert f"ast.{name}" in source, \
            f"closure specializer does not handle ast.{name}"


def test_source_codegen_covers_every_node():
    source = _source_of(codegen)
    for name in EXPR_NODES:
        assert f"ast.{name}" in source, \
            f"source codegen does not handle ast.{name}"


def test_children_covers_every_composite_node():
    """The analyses' traversal helper must know every composite node."""
    source = inspect.getsource(ast.children)
    for name in EXPR_NODES:
        node_type = getattr(ast, name)
        import dataclasses

        fields = [f for f in dataclasses.fields(node_type)
                  if f.name not in ("pos", "ty")]
        has_expr_children = any(
            "Expr" in str(f.type) or f.name in ("bindings", "exprs",
                                                "elems", "args")
            for f in fields)
        if has_expr_children:
            assert name in source, f"ast.children misses {name}"


def test_backend_registry():
    assert set(jit.BACKENDS) == {"interpreter", "closure", "source"}
