"""Primitive library tests, one class per family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import RecordingContext
from repro.interp.primitives import PRIMITIVES
from repro.interp.values import UNIT, PlanPList, PlanPTable
from repro.lang import PlanPRuntimeError
from repro.lang import types as T
from repro.lang.errors import SourcePos, TypeCheckError
from repro.net.addresses import HostAddr
from repro.net.packet import IpHeader, TcpHeader, UdpHeader


def call(name, *args, ctx=None):
    return PRIMITIVES[name].impl(ctx or RecordingContext(), list(args))


def rule(name, arg_types):
    return PRIMITIVES[name].type_rule(list(arg_types), SourcePos())


class TestIpPrimitives:
    def setup_method(self):
        self.ip = IpHeader(src=HostAddr.parse("1.1.1.1"),
                           dst=HostAddr.parse("2.2.2.2"))

    def test_src_dst(self):
        assert str(call("ipSrc", self.ip)) == "1.1.1.1"
        assert str(call("ipDst", self.ip)) == "2.2.2.2"

    def test_dest_set_is_functional(self):
        new = call("ipDestSet", self.ip, HostAddr.parse("3.3.3.3"))
        assert str(new.dst) == "3.3.3.3"
        assert str(self.ip.dst) == "2.2.2.2"  # original untouched

    def test_swap(self):
        swapped = call("ipSwap", self.ip)
        assert str(swapped.src) == "2.2.2.2"
        assert str(swapped.dst) == "1.1.1.1"

    def test_mk(self):
        made = call("ipMk", HostAddr.parse("9.9.9.9"),
                    HostAddr.parse("8.8.8.8"))
        assert str(made.src) == "9.9.9.9"

    def test_tos_set(self):
        assert call("ipTos", call("ipTosSet", self.ip, 5)) == 5

    def test_type_rule(self):
        assert rule("ipSrc", [T.IP]) == T.HOST
        with pytest.raises(TypeCheckError):
            rule("ipSrc", [T.TCP])
        with pytest.raises(TypeCheckError):
            rule("ipSrc", [T.IP, T.IP])


class TestTransportPrimitives:
    def test_tcp_ports(self):
        tcp = TcpHeader(src_port=1234, dst_port=80)
        assert call("tcpSrc", tcp) == 1234
        assert call("tcpDst", tcp) == 80
        assert call("tcpDst", call("tcpDstSet", tcp, 8080)) == 8080

    def test_tcp_flags(self):
        tcp = TcpHeader(syn=True, ack_flag=True)
        assert call("tcpSyn", tcp) is True
        assert call("tcpFin", tcp) is False
        assert call("tcpAckFlag", tcp) is True

    def test_udp_swap(self):
        udp = UdpHeader(src_port=1, dst_port=2)
        swapped = call("udpSwap", udp)
        assert (swapped.src_port, swapped.dst_port) == (2, 1)

    def test_udp_mk(self):
        made = call("udpMk", 10, 20)
        assert (made.src_port, made.dst_port) == (10, 20)


class TestBlobPrimitives:
    def test_len_byte_sub_cat(self):
        blob = b"hello"
        assert call("blobLen", blob) == 5
        assert call("blobByte", blob, 1) == ord("e")
        assert call("blobSub", blob, 1, 3) == b"ell"
        assert call("blobCat", blob, b"!") == b"hello!"

    def test_byte_out_of_range(self):
        with pytest.raises(PlanPRuntimeError) as err:
            call("blobByte", b"ab", 5)
        assert err.value.exception_name == "Subscript"

    def test_sub_out_of_range(self):
        with pytest.raises(PlanPRuntimeError):
            call("blobSub", b"abc", 2, 5)

    def test_int_roundtrip(self):
        blob = call("blobWithInt", bytes(8), 2, -12345)
        assert call("blobInt", blob, 2) == -12345
        assert len(blob) == 8

    def test_with_byte(self):
        assert call("blobWithByte", b"abc", 1, ord("X")) == b"aXc"

    def test_string_roundtrip(self):
        assert call("stringOfBlob", call("blobOfString", "hi")) == "hi"

    def test_index(self):
        assert call("blobIndex", b"xxGETxx", "GET") == 2
        assert call("blobIndex", b"xx", "GET") == -1

    def test_empty(self):
        assert call("blobEmpty") == b""


class TestStringPrimitives:
    def test_len_cat_sub(self):
        assert call("strLen", "abc") == 3
        assert call("strCat", "ab", "cd") == "abcd"
        assert call("strSub", "hello", 1, 3) == "ell"

    def test_sub_out_of_range(self):
        with pytest.raises(PlanPRuntimeError):
            call("strSub", "ab", 0, 5)

    def test_index(self):
        assert call("strIndex", "PLAY f", "PLAY ") == 0
        assert call("strIndex", "x", "PLAY") == -1

    def test_field(self):
        assert call("strField", "PLAY movie 9000", 1, " ") == "movie"
        assert call("strField", "a b", 1, " ") == "b"

    def test_field_missing_raises(self):
        with pytest.raises(PlanPRuntimeError) as err:
            call("strField", "a b", 5, " ")
        assert err.value.exception_name == "Subscript"

    def test_int_conversions(self):
        assert call("intToString", -7) == "-7"
        assert call("stringToInt", "42") == 42

    def test_string_to_int_failure(self):
        with pytest.raises(PlanPRuntimeError) as err:
            call("stringToInt", "4x")
        assert err.value.exception_name == "BadInt"

    def test_host_to_string(self):
        assert call("hostToString", HostAddr.parse("1.2.3.4")) == \
            "1.2.3.4"

    def test_char_pos_and_chr(self):
        assert call("charPos", "A") == 65
        assert call("chr", 66) == "B"


class TestTablePrimitives:
    def test_set_get(self):
        table = call("mkTable", 16)
        assert isinstance(table, PlanPTable)
        call("tableSet", table, "k", 7)
        assert call("tableGet", table, "k") == 7

    def test_get_missing_raises_notfound(self):
        with pytest.raises(PlanPRuntimeError) as err:
            call("tableGet", call("mkTable", 4), "k")
        assert err.value.exception_name == "NotFound"

    def test_get_default_and_mem(self):
        table = call("mkTable", 4)
        assert call("tableGetDefault", table, "k", -1) == -1
        assert call("tableMem", table, "k") is False
        call("tableSet", table, "k", 1)
        assert call("tableMem", table, "k") is True

    def test_remove_and_size(self):
        table = call("mkTable", 4)
        call("tableSet", table, "a", 1)
        call("tableSet", table, "b", 2)
        assert call("tableSize", table) == 2
        call("tableRemove", table, "a")
        assert call("tableSize", table) == 1

    def test_type_rule_rejects_non_equality_keys(self):
        with pytest.raises(TypeCheckError, match="equality"):
            rule("tableGet", [T.HashTableType(T.INT),
                              T.HashTableType(T.INT)])

    def test_type_rule_value_type(self):
        assert rule("tableGet",
                    [T.HashTableType(T.HOST), T.INT]) == T.HOST


class TestListPrimitives:
    def test_head_tail_len(self):
        lst = PlanPList((1, 2, 3))
        assert call("listHead", lst) == 1
        assert call("listTail", lst) == PlanPList((2, 3))
        assert call("listLen", lst) == 3

    def test_empty_head_raises(self):
        with pytest.raises(PlanPRuntimeError) as err:
            call("listHead", PlanPList())
        assert err.value.exception_name == "HeadEmpty"

    def test_null_rev_mem(self):
        assert call("listNull", call("listNew")) is True
        assert call("listRev", PlanPList((1, 2))) == PlanPList((2, 1))
        assert call("listMem", 2, PlanPList((1, 2))) is True


class TestAudioPrimitives:
    @staticmethod
    def _pcm_stereo(samples):
        return np.array(samples, dtype="<i2").tobytes()

    def test_stereo_to_mono_averages(self):
        pcm = self._pcm_stereo([100, 200, -50, 50])
        mono = call("audioStereoToMono", pcm)
        assert np.frombuffer(mono, "<i2").tolist() == [150, 0]

    def test_mono_to_stereo_duplicates(self):
        pcm = self._pcm_stereo([7, -7])
        stereo = call("audioMonoToStereo", pcm)
        assert np.frombuffer(stereo, "<i2").tolist() == [7, 7, -7, -7]

    def test_16_to_8_to_16_bounded_error(self):
        samples = [-32768, -256, 0, 255, 1000, 32767]
        pcm = self._pcm_stereo(samples)
        restored = call("audio8to16", call("audio16to8", pcm))
        back = np.frombuffer(restored, "<i2")
        for orig, rest in zip(samples, back):
            assert abs(int(orig) - int(rest)) < 256  # 8-bit quantisation

    def test_sizes_halve(self):
        pcm = self._pcm_stereo(list(range(8)))  # 16 bytes
        assert len(call("audioStereoToMono", pcm)) == 8
        assert len(call("audio16to8", pcm)) == 8

    def test_odd_length_rejected(self):
        with pytest.raises(PlanPRuntimeError) as err:
            call("audio16to8", b"abc")
        assert err.value.exception_name == "BadPacket"

    def test_odd_sample_count_stereo_rejected(self):
        with pytest.raises(PlanPRuntimeError):
            call("audioStereoToMono", b"ab")

    @given(st.lists(st.integers(-32768, 32767), min_size=2, max_size=64)
           .filter(lambda s: len(s) % 2 == 0))
    @settings(max_examples=50, deadline=None)
    def test_degradation_chain_preserves_length_ratios(self, samples):
        pcm = np.array(samples, dtype="<i2").tobytes()
        mono = call("audioStereoToMono", pcm)
        m8 = call("audio16to8", mono)
        assert len(mono) == len(pcm) // 2
        assert len(m8) == len(mono) // 2
        # Restoration returns to the original size.
        restored = call("audioMonoToStereo", call("audio8to16", m8))
        assert len(restored) == len(pcm)


class TestEnvironmentPrimitives:
    def test_this_host_and_time(self):
        ctx = RecordingContext(now_ms=123)
        assert call("thisHost", ctx=ctx) == ctx.host
        assert call("getTime", ctx=ctx) == 123

    def test_link_monitoring(self):
        ctx = RecordingContext(default_bandwidth=2000, default_load=500)
        host = HostAddr.parse("5.5.5.5")
        assert call("linkBandwidth", host, ctx=ctx) == 2000
        assert call("linkLoad", host, ctx=ctx) == 500
        ctx.loads[host] = 999
        assert call("linkLoad", host, ctx=ctx) == 999

    def test_random_is_seeded(self):
        ctx1, ctx2 = RecordingContext(seed=4), RecordingContext(seed=4)
        seq1 = [call("random", 100, ctx=ctx1) for _ in range(8)]
        seq2 = [call("random", 100, ctx=ctx2) for _ in range(8)]
        assert seq1 == seq2  # equal seeds, equal draws
        assert all(0 <= n < 100 for n in seq1)
        assert call("random", 0, ctx=ctx1) == 0  # degenerate bound

    def test_print_and_println(self):
        ctx = RecordingContext()
        call("print", "a", ctx=ctx)
        call("println", 42, ctx=ctx)
        call("println", True, ctx=ctx)
        assert ctx.printed == ["a", "42\n", "true\n"]

    def test_deliver_and_drop_record(self):
        ctx = RecordingContext()
        packet = (IpHeader(), UdpHeader(), b"x")
        call("deliver", packet, ctx=ctx)
        call("drop", packet, ctx=ctx)
        assert [e.kind for e in ctx.emissions] == ["deliver", "drop"]


class TestRegistryIntegrity:
    def test_no_primitive_collides_with_emission_names(self):
        assert "OnRemote" not in PRIMITIVES
        assert "OnNeighbor" not in PRIMITIVES

    def test_may_raise_names_are_known(self):
        from repro.interp.primitives import BUILTIN_EXCEPTIONS

        for prim in PRIMITIVES.values():
            for exn in prim.may_raise:
                assert exn in BUILTIN_EXCEPTIONS

    def test_exit_primitives_flagged(self):
        assert PRIMITIVES["deliver"].is_exit
        assert not PRIMITIVES["drop"].is_exit
