"""Image distillation primitive tests (paper §5 extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import RecordingContext
from repro.interp.image_prims import (decode_image, downscale,
                                      encode_image, quantize)
from repro.interp.primitives import PRIMITIVES
from repro.lang import PlanPRuntimeError


def call(name, *args):
    return PRIMITIVES[name].impl(RecordingContext(), list(args))


def sample_image(width=16, height=12):
    return encode_image(
        (np.arange(width * height) % 256).astype(np.uint8)
        .reshape(height, width))


class TestFormat:
    def test_encode_decode_roundtrip(self):
        pixels = np.arange(48, dtype=np.uint8).reshape(6, 8)
        got, bits = decode_image(encode_image(pixels, bits=8))
        assert np.array_equal(got, pixels)
        assert bits == 8

    def test_bad_magic_rejected(self):
        with pytest.raises(PlanPRuntimeError) as err:
            decode_image(b"JUNKxxxxxxxxxxxx")
        assert err.value.exception_name == "BadPacket"

    def test_truncated_body_rejected(self):
        blob = sample_image()[:-3]
        with pytest.raises(PlanPRuntimeError):
            decode_image(blob)

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            encode_image(np.zeros((2, 2), np.uint8), bits=9)


class TestOperators:
    def test_downscale_halves(self):
        pixels = np.arange(64, dtype=np.uint8).reshape(8, 8)
        small = downscale(pixels)
        assert small.shape == (4, 4)
        # Top-left 2x2 block of 0,1,8,9 averages to 4.
        assert small[0, 0] == 4

    def test_downscale_odd_dimensions(self):
        pixels = np.zeros((5, 7), np.uint8)
        assert downscale(pixels).shape == (2, 3)

    def test_downscale_degenerate(self):
        assert downscale(np.zeros((1, 1), np.uint8)).shape == (1, 1)

    def test_quantize_reduces_levels(self):
        pixels = np.arange(256, dtype=np.uint8).reshape(16, 16)
        q = quantize(pixels, 2)
        assert set(np.unique(q)) == {0, 64, 128, 192}

    @given(st.integers(2, 12), st.integers(2, 12))
    @settings(max_examples=25, deadline=None)
    def test_downscale_never_grows(self, w, h):
        pixels = np.zeros((h, w), np.uint8)
        small = downscale(pixels)
        assert small.shape[0] <= h and small.shape[1] <= w
        assert small.size < pixels.size or pixels.size == 1


class TestPrimitives:
    def test_dimensions(self):
        blob = sample_image(20, 10)
        assert call("imgWidth", blob) == 20
        assert call("imgHeight", blob) == 10
        assert call("imgDepth", blob) == 8

    def test_is_image(self):
        assert call("imgIs", sample_image()) is True
        assert call("imgIs", b"not an image") is False

    def test_downscale_primitive(self):
        blob = sample_image(16, 12)
        small = call("imgDownscale", blob)
        assert call("imgWidth", small) == 8
        assert call("imgHeight", small) == 6

    def test_quantize_primitive(self):
        blob = sample_image()
        q = call("imgQuantize", blob, 4)
        assert call("imgDepth", q) == 4
        assert len(q) == len(blob)

    def test_quantize_bad_depth(self):
        with pytest.raises(PlanPRuntimeError):
            call("imgQuantize", sample_image(), 0)

    def test_distill_fits_budget(self):
        blob = sample_image(64, 64)  # 4105 bytes
        out = call("imgDistill", blob, 1200)
        assert len(out) <= 1200
        assert call("imgIs", out)

    def test_distill_noop_when_within_budget(self):
        blob = sample_image(8, 8)
        assert call("imgDistill", blob, 10_000) == blob

    def test_distill_tiny_budget_rejected(self):
        with pytest.raises(PlanPRuntimeError):
            call("imgDistill", sample_image(), 5)

    @given(st.integers(200, 3000))
    @settings(max_examples=20, deadline=None)
    def test_distill_budget_property(self, budget):
        blob = sample_image(48, 48)
        out = call("imgDistill", blob, budget)
        # Either it fits, or the image is already a single pixel.
        assert len(out) <= budget or call("imgWidth", out) <= 1

    def test_usable_from_planp(self):
        """The primitives extend the whole toolchain (interpreter, type
        checker and both JITs) — compile a program using them on every
        backend."""
        from repro.jit import load_program

        src = """
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  if imgIs(#3 p) then
    try
      (OnRemote(network, (#1 p, #2 p, imgDistill(#3 p, 500)));
       (ps + 1, ss))
    handle _ =>
      (OnRemote(network, p); (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))
"""
        for backend in ("interpreter", "closure", "source"):
            loaded = load_program(src, backend=backend)
            ctx = RecordingContext()
            chan = loaded.info.channels["network"][0]
            from repro.net.packet import IpHeader, UdpHeader

            packet = (IpHeader(), UdpHeader(), sample_image(64, 64))
            ps, _ss = loaded.engine.run_channel(chan, 0, None, packet,
                                                ctx)
            assert ps == 1
            emitted = ctx.remote_emissions[0].packet_value[2]
            assert len(emitted) <= 500
