"""Run-time value domain tests."""

import pytest

from repro.interp.values import (UNIT, PlanPList, PlanPTable, conforms,
                                 default_value, format_value, values_equal)
from repro.lang import types as T
from repro.net.addresses import HostAddr
from repro.net.packet import IpHeader, TcpHeader, UdpHeader


class TestUnit:
    def test_singleton(self):
        from repro.interp.values import _UnitType

        assert _UnitType() is UNIT

    def test_repr(self):
        assert repr(UNIT) == "()"

    def test_equality(self):
        assert UNIT == UNIT
        assert UNIT != 0


class TestPlanPTable:
    def test_put_get(self):
        table = PlanPTable(4)
        table.put("a", 1)
        assert table.get("a") == 1

    def test_get_missing_raises_keyerror(self):
        with pytest.raises(KeyError):
            PlanPTable(4).get("missing")

    def test_get_default(self):
        table = PlanPTable(4)
        assert table.get_default("x", 9) == 9

    def test_overwrite(self):
        table = PlanPTable(4)
        table.put("a", 1)
        table.put("a", 2)
        assert table.get("a") == 2
        assert len(table) == 1

    def test_capacity_evicts_oldest(self):
        table = PlanPTable(2)
        table.put("a", 1)
        table.put("b", 2)
        table.put("c", 3)
        assert len(table) == 2
        assert "a" not in table
        assert table.get("c") == 3

    def test_reinsert_refreshes_age(self):
        table = PlanPTable(2)
        table.put("a", 1)
        table.put("b", 2)
        table.put("a", 10)  # refresh a
        table.put("c", 3)   # evicts b
        assert "a" in table
        assert "b" not in table

    def test_remove_is_idempotent(self):
        table = PlanPTable(2)
        table.put("a", 1)
        table.remove("a")
        table.remove("a")
        assert "a" not in table

    def test_tuple_keys(self):
        table = PlanPTable(8)
        key = (HostAddr.parse("1.2.3.4"), 80)
        table.put(key, "v")
        assert table.get((HostAddr.parse("1.2.3.4"), 80)) == "v"

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanPTable(0)


class TestPlanPList:
    def test_cons_builds_front(self):
        lst = PlanPList().cons(2).cons(1)
        assert lst.items == (1, 2)

    def test_head_tail(self):
        lst = PlanPList((1, 2, 3))
        assert lst.head == 1
        assert lst.tail.items == (2, 3)

    def test_head_of_empty_raises(self):
        with pytest.raises(IndexError):
            PlanPList().head

    def test_reversed(self):
        assert PlanPList((1, 2, 3)).reversed().items == (3, 2, 1)

    def test_equality_and_hash(self):
        assert PlanPList((1, 2)) == PlanPList((1, 2))
        assert hash(PlanPList((1, 2))) == hash(PlanPList((1, 2)))
        assert PlanPList((1,)) != PlanPList((2,))


class TestDefaultValue:
    def test_scalars(self):
        assert default_value(T.INT) == 0
        assert default_value(T.BOOL) is False
        assert default_value(T.STRING) == ""
        assert default_value(T.UNIT) is UNIT

    def test_headers(self):
        assert isinstance(default_value(T.IP), IpHeader)
        assert isinstance(default_value(T.UDP), UdpHeader)

    def test_tuple(self):
        got = default_value(T.TupleType((T.INT, T.BOOL)))
        assert got == (0, False)

    def test_table_and_list(self):
        assert isinstance(default_value(T.HashTableType(T.INT)),
                          PlanPTable)
        assert isinstance(default_value(T.ListType(T.INT)), PlanPList)


class TestConforms:
    def test_int_vs_bool_distinguished(self):
        assert conforms(3, T.INT)
        assert not conforms(True, T.INT)
        assert conforms(True, T.BOOL)

    def test_char_is_one_char_string(self):
        assert conforms("x", T.CHAR)
        assert not conforms("xy", T.CHAR)

    def test_packet_tuple(self):
        ty = T.TupleType((T.IP, T.TCP, T.BLOB))
        value = (IpHeader(), TcpHeader(), b"data")
        assert conforms(value, ty)
        assert not conforms((IpHeader(), UdpHeader(), b""), ty)

    def test_list_elements_checked(self):
        assert conforms(PlanPList((1, 2)), T.ListType(T.INT))
        assert not conforms(PlanPList((1, "x")), T.ListType(T.INT))


class TestFormatValue:
    def test_bools_print_ml_style(self):
        assert format_value(True) == "true"
        assert format_value(False) == "false"

    def test_host(self):
        assert format_value(HostAddr.parse("10.0.0.1")) == "10.0.0.1"

    def test_tuple(self):
        assert format_value((1, True)) == "(1, true)"

    def test_blob_summarised(self):
        assert format_value(b"abcd") == "<blob 4B>"

    def test_values_equal_structural(self):
        assert values_equal((1, "a"), (1, "a"))
        assert not values_equal((1,), (2,))
