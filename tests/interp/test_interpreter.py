"""Interpreter unit tests: expression semantics and channel execution."""

import pytest

from repro.interp import Interpreter, RecordingContext
from repro.interp.env import Env
from repro.interp.interpreter import _sml_div
from repro.interp.values import UNIT, PlanPList
from repro.lang import PlanPRuntimeError, parse, typecheck
from repro.lang.parser import parse_expr
from repro.lang.typechecker import TypeChecker

from ..conftest import FORWARD_SRC, run_packet, tcp_packet_value


def eval_expr(source: str, expected_type=None):
    """Type check and interpret one closed expression."""
    program_src = (f"val result : {expected_type or 'int'} = {source}\n"
                   f"{FORWARD_SRC}")
    info = typecheck(parse(program_src))
    interp = Interpreter(info)
    ctx = RecordingContext()
    return interp.globals_env(ctx).lookup("result"), ctx


class TestLiteralsAndOperators:
    def test_arithmetic(self):
        assert eval_expr("2 + 3 * 4")[0] == 14

    def test_subtraction_and_unary_minus(self):
        assert eval_expr("-(5 - 9)")[0] == 4

    def test_division_truncates_toward_zero(self):
        # C semantics, matching the paper's C interpreter.
        assert eval_expr("7 / 2")[0] == 3
        assert eval_expr("(0 - 7) / 2")[0] == -3
        assert eval_expr("7 / (0 - 2)")[0] == -3

    def test_sml_div_helper(self):
        assert _sml_div(-7, 2) == -3
        assert _sml_div(7, -2) == -3
        assert _sml_div(-7, -2) == 3

    def test_mod(self):
        assert eval_expr("10 mod 3")[0] == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(PlanPRuntimeError) as err:
            eval_expr("1 / 0")
        assert err.value.exception_name == "DivideByZero"

    def test_mod_by_zero_raises(self):
        with pytest.raises(PlanPRuntimeError):
            eval_expr("1 mod 0")

    def test_string_concat(self):
        assert eval_expr('"ab" ^ "cd"', "string")[0] == "abcd"

    def test_comparisons(self):
        assert eval_expr("1 < 2", "bool")[0] is True
        assert eval_expr('"b" >= "a"', "bool")[0] is True
        assert eval_expr("3 <> 3", "bool")[0] is False

    def test_equality_on_tuples(self):
        assert eval_expr("(1, true) = (1, true)", "bool")[0] is True

    def test_not(self):
        assert eval_expr("not (1 = 2)", "bool")[0] is True

    def test_short_circuit_andalso(self):
        # The right operand would raise; short-circuiting avoids it.
        value, _ = eval_expr("false andalso (1 / 0 = 0)", "bool")
        assert value is False

    def test_short_circuit_orelse(self):
        value, _ = eval_expr("true orelse (1 / 0 = 0)", "bool")
        assert value is True

    def test_cons(self):
        value, _ = eval_expr("1 :: 2 :: listNew()", "(int) list")
        assert value == PlanPList((1, 2))


class TestBindingAndControl:
    def test_let_scoping(self):
        assert eval_expr(
            "let val a : int = 2 val b : int = a * 3 in a + b end")[0] == 8

    def test_let_shadowing(self):
        src = ("let val a : int = 1 in "
               "(let val a : int = 2 in a end) + a end")
        assert eval_expr(src)[0] == 3

    def test_if(self):
        assert eval_expr("if 2 > 1 then 10 else 20")[0] == 10

    def test_seq_returns_last(self):
        value, ctx = eval_expr('(print("x"); 5)')
        assert value == 5
        assert ctx.printed == ["x"]

    def test_tuple_and_projection(self):
        assert eval_expr("#2 (10, 20, 30)")[0] == 20

    def test_try_catches_matching(self):
        assert eval_expr("try 1 / 0 handle DivideByZero => 99")[0] == 99

    def test_try_wildcard(self):
        assert eval_expr("try 1 / 0 handle _ => 42")[0] == 42

    def test_try_mismatched_propagates(self):
        with pytest.raises(PlanPRuntimeError):
            eval_expr("try 1 / 0 handle NotFound => 0")

    def test_user_exception(self):
        src = ("exception Mine\n"
               "val result : int = try raise Mine handle Mine => 7\n"
               + FORWARD_SRC)
        info = typecheck(parse(src))
        interp = Interpreter(info)
        assert interp.globals_env(RecordingContext()).lookup(
            "result") == 7


class TestFunctions:
    def test_fun_call(self):
        src = ("fun double(x : int) : int = x * 2\n"
               "val result : int = double(21)\n" + FORWARD_SRC)
        info = typecheck(parse(src))
        assert Interpreter(info).globals_env(
            RecordingContext()).lookup("result") == 42

    def test_fun_sees_globals_not_caller_locals(self):
        src = ("val g : int = 100\n"
               "fun f(x : int) : int = x + g\n"
               "val result : int = let val g : int = 1 in f(1) end\n"
               + FORWARD_SRC)
        info = typecheck(parse(src))
        assert Interpreter(info).globals_env(
            RecordingContext()).lookup("result") == 101

    def test_nested_fun_calls(self):
        src = ("fun inc(x : int) : int = x + 1\n"
               "fun twice(x : int) : int = inc(inc(x))\n"
               "val result : int = twice(0)\n" + FORWARD_SRC)
        info = typecheck(parse(src))
        assert Interpreter(info).globals_env(
            RecordingContext()).lookup("result") == 2


class TestChannelExecution:
    def test_forward_increments_state(self):
        ps, _ss, ctx = run_packet(FORWARD_SRC, tcp_packet_value(),
                                  repeat=3)
        assert ps == 3
        assert len(ctx.remote_emissions) == 3

    def test_initstate_evaluated_once_per_install(self):
        src = ("channel network(ps : int, ss : (int) hash_table, "
               "p : ip*tcp*blob) initstate mkTable(8) is "
               "(tableSet(ss, 1, tableGetDefault(ss, 1, 0) + 1); "
               "OnRemote(network, p); (ps, ss))")
        ps, ss, _ = run_packet(src, tcp_packet_value(), repeat=5)
        assert ss.get(1) == 5

    def test_channel_state_default_without_initstate(self):
        src = ("channel network(ps : int, ss : int, p : ip*tcp*blob) is "
               "(OnRemote(network, p); (ps, ss + 1))")
        _ps, ss, _ = run_packet(src, tcp_packet_value(), repeat=4)
        assert ss == 4

    def test_emission_carries_transformed_packet(self):
        src = ("val target : host = 9.9.9.9\n"
               "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(OnRemote(network, (ipDestSet(#1 p, target), #2 p, #3 p));"
               " (ps, ss))")
        _ps, _ss, ctx = run_packet(src, tcp_packet_value())
        assert str(ctx.remote_emissions[0].packet_value[0].dst) == \
            "9.9.9.9"

    def test_onneighbor_records_neighbor(self):
        src = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(OnNeighbor(network, p, 10.0.0.5); (ps, ss))")
        _ps, _ss, ctx = run_packet(src, tcp_packet_value())
        emission = ctx.emissions[0]
        assert emission.kind == "neighbor"
        assert str(emission.neighbor) == "10.0.0.5"

    def test_globals_shared_across_invocations(self):
        src = ("val table : (int) hash_table = mkTable(4)\n"
               "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
               "(tableSet(table, 0, tableGetDefault(table, 0, 0) + 1); "
               "OnRemote(network, p); (tableGetDefault(table, 0, 0), ss))")
        ps, _ss, _ = run_packet(src, tcp_packet_value(), repeat=3)
        assert ps == 3

    def test_env_lookup_failure_is_internal_error(self):
        env = Env()
        with pytest.raises(KeyError):
            env.lookup("nope")
