"""Small-unit tests for corners not covered elsewhere."""

import pytest

from repro.lang.errors import (PlanPRuntimeError, SourcePos,
                               VerificationError)


class TestErrors:
    def test_source_pos_formatting(self):
        assert str(SourcePos(3, 7)) == "3:7"

    def test_error_message_includes_position(self):
        err = PlanPRuntimeError("boom", SourcePos(2, 5))
        assert str(err) == "2:5: boom"

    def test_error_without_position(self):
        err = PlanPRuntimeError("boom")
        assert str(err) == "boom"

    def test_positions_are_ordered(self):
        assert SourcePos(1, 9) < SourcePos(2, 1)
        assert SourcePos(2, 1) < SourcePos(2, 4)

    def test_verification_error_carries_analysis(self):
        err = VerificationError("nope", analysis="delivery")
        assert err.analysis == "delivery"

    def test_runtime_error_default_exception_name(self):
        assert PlanPRuntimeError("x").exception_name == "Error"


class TestPipeline:
    def test_unknown_backend_rejected(self):
        from repro.jit import make_engine
        from repro.lang import parse, typecheck

        info = typecheck(parse(
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (ps, ss))"))
        with pytest.raises(ValueError, match="unknown backend"):
            make_engine(info, "llvm")

    def test_load_program_reports_lines_and_time(self):
        from repro.jit import load_program

        loaded = load_program(
            "-- header comment\n"
            "channel network(ps : int, ss : unit, p : ip*tcp*blob) is\n"
            "  (OnRemote(network, p); (ps, ss))\n")
        assert loaded.source_lines == 2
        assert loaded.codegen_ms >= 0
        assert loaded.backend == "closure"


class TestMpegServerEdges:
    def test_stop_halts_clocks(self):
        from repro.apps.mpeg import MpegServer, MpegStream
        from repro.net import Network

        net = Network(seed=3)
        s = net.add_host("s")
        c = net.add_host("c")
        net.link(s, c)
        net.finalize()
        stream = MpegStream(name="f")
        server = MpegServer(net, s, {"f": stream})
        conn = net.tcp(c).connect(s.address, 8000)
        conn.on_connected = lambda x: x.send(b"PLAY f 9000\n")
        net.run(until=1.0)
        sent_at_stop = server.sessions[0].frames_sent
        server.stop()
        net.run(until=3.0)
        assert server.sessions[0].frames_sent == sent_at_stop

    def test_malformed_play_rejected(self):
        from repro.apps.mpeg import MpegServer, MpegStream
        from repro.net import Network

        net = Network(seed=3)
        s = net.add_host("s")
        c = net.add_host("c")
        net.link(s, c)
        net.finalize()
        server = MpegServer(net, s, {"f": MpegStream(name="f")})
        got = bytearray()
        conn = net.tcp(c).connect(s.address, 8000)
        conn.on_data = lambda x, d: got.extend(d)
        conn.on_connected = lambda x: x.send(b"GARBAGE\n")
        net.run(until=1.0)
        assert server.errors == 1
        assert got.startswith(b"ERROR")


class TestContextDefaults:
    def test_recording_context_defaults(self):
        from repro.interp import RecordingContext
        from repro.net.addresses import HostAddr

        ctx = RecordingContext()
        somewhere = HostAddr.parse("1.2.3.4")
        assert ctx.link_load(somewhere) == 0
        assert ctx.link_bandwidth(somewhere) == 10_000
        assert ctx.queue_len(somewhere) == 0
        assert ctx.time_ms() == 0

    def test_emission_helpers(self):
        from repro.interp import RecordingContext
        from repro.net.packet import IpHeader, UdpHeader

        ctx = RecordingContext()
        pkt = (IpHeader(), UdpHeader(), b"")
        ctx.emit_remote("network", pkt)
        ctx.deliver(pkt)
        assert len(ctx.remote_emissions) == 1
        assert len(ctx.delivered) == 1


class TestTopologyGuards:
    def test_run_before_finalize_rejected(self):
        from repro.net import Network

        net = Network()
        net.add_host("a")
        with pytest.raises(RuntimeError, match="finalize"):
            net.run(until=1.0)

    def test_duplicate_node_name_rejected(self):
        from repro.net import Network

        net = Network()
        net.add_host("a")
        with pytest.raises(ValueError, match="duplicate"):
            net.add_host("a")

    def test_node_lookup_by_name(self):
        from repro.net import Network

        net = Network()
        a = net.add_host("a")
        assert net["a"] is a

    def test_link_is_two_ended(self):
        from repro.net import Link, Network

        net = Network()
        a = net.add_host("a")
        b = net.add_host("b")
        c = net.add_host("c")
        link = net.link(a, b)
        with pytest.raises(RuntimeError, match="two ends"):
            c.add_interface(link, c.address if c.interfaces else
                            __import__("repro.net.addresses",
                                       fromlist=["HostAddr"])
                            .HostAddr.parse("10.9.9.9"))


class TestChannelStateIsolation:
    def test_overloads_have_independent_channel_state(self):
        from repro.interp import Interpreter, RecordingContext
        from repro.lang import parse, typecheck
        from ..conftest import tcp_packet_value, udp_packet_value

        src = (
            "channel network(ps : int, ss : int, p : ip*tcp*blob) is "
            "(OnRemote(network, p); (ps, ss + 1))\n"
            "channel network(ps : int, ss : int, q : ip*udp*blob) is "
            "(OnRemote(network, q); (ps, ss + 100))")
        info = typecheck(parse(src))
        interp = Interpreter(info)
        ctx = RecordingContext()
        tcp_decl, udp_decl = info.channels["network"]
        ps = 0
        ss_tcp = interp.initial_channel_state(tcp_decl, ctx)
        ss_udp = interp.initial_channel_state(udp_decl, ctx)
        ps, ss_tcp = interp.run_channel(tcp_decl, ps, ss_tcp,
                                        tcp_packet_value(), ctx)
        ps, ss_udp = interp.run_channel(udp_decl, ps, ss_udp,
                                        udp_packet_value(), ctx)
        assert (ss_tcp, ss_udp) == (1, 100)
