"""Integration: the HTTP cluster experiment (figure 8), scaled down."""

import pytest

from repro.apps.http import generate_trace, run_http_experiment

DURATION = 10.0
WARMUP = 3.0


@pytest.fixture(scope="module")
def curves():
    trace = generate_trace(4000, seed=11)
    return {mode: run_http_experiment(mode, 8, duration=DURATION,
                                      warmup=WARMUP, trace=trace)
            for mode in ("single", "asp", "builtin", "disjoint")}


class TestFig8Shape:
    def test_asp_close_to_builtin(self, curves):
        """Curve b vs curve c: 'little or no difference'."""
        ratio = (curves["asp"].throughput_rps
                 / curves["builtin"].throughput_rps)
        assert ratio == pytest.approx(1.0, abs=0.05)

    def test_asp_vs_single_server_factor(self, curves):
        """The paper's 1.75x headline."""
        ratio = (curves["asp"].throughput_rps
                 / curves["single"].throughput_rps)
        assert 1.5 < ratio < 1.95

    def test_gateway_contention_below_disjoint(self, curves):
        """~85% of two servers with disjoint clients."""
        ratio = (curves["asp"].throughput_rps
                 / curves["disjoint"].throughput_rps)
        assert 0.75 < ratio < 0.95

    def test_load_balanced_evenly(self, curves):
        assert curves["asp"].balance_ratio > 0.95

    def test_no_failed_requests(self, curves):
        for result in curves.values():
            assert result.failures == 0

    def test_single_uses_one_server(self, curves):
        served = curves["single"].per_server_served
        assert served["server1"] == 0
        assert served["server0"] > 0


class TestScaling:
    def test_throughput_grows_until_saturation(self):
        trace = generate_trace(3000, seed=11)
        light = run_http_experiment("asp", 2, duration=8.0, warmup=2.0,
                                    trace=trace)
        heavy = run_http_experiment("asp", 8, duration=8.0, warmup=2.0,
                                    trace=trace)
        assert heavy.throughput_rps > light.throughput_rps * 1.5

    def test_three_server_cluster_scales_further(self):
        """The reconfigurability claim: regenerate the ASP for three
        servers and capacity grows."""
        trace = generate_trace(3000, seed=11)
        two = run_http_experiment("asp", 12, duration=8.0, warmup=2.0,
                                  n_servers=2, trace=trace,
                                  gateway_cpu_s=0.0)
        three = run_http_experiment("asp", 12, duration=8.0, warmup=2.0,
                                    n_servers=3, trace=trace,
                                    gateway_cpu_s=0.0)
        assert three.throughput_rps > two.throughput_rps * 1.2
        assert len(three.per_server_served) == 3
        assert three.balance_ratio > 0.9


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["modulo", "srchash", "random"])
    def test_strategies_all_work(self, strategy):
        trace = generate_trace(2000, seed=11)
        result = run_http_experiment("asp", 4, duration=6.0, warmup=2.0,
                                     strategy=strategy, trace=trace)
        assert result.failures == 0
        assert result.throughput_rps > 50
