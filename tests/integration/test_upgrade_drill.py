"""The end-to-end rolling-upgrade drill (this PR's acceptance scenario).

A 16-node fleet forwards live traffic under generation 1.  An
incompatible generation 2 (packet layout changed) must be **vetoed
before the canary window opens** — no node installs it, no mixed
packet is exchanged.  A compatible generation 2 must promote
fleet-wide; and with the checker on, a compatible rollout's delivery
stream is byte-identical to the same run with the checker off.
"""

import json

from repro.experiments.upgrade import run_upgrade_experiment
from repro.harness import ResultStore, Runner, matrix
from repro.obs import Observability
from repro.tools.obsdump import lifecycle_summary


class TestVetoBeforeCanary:
    def setup_method(self):
        self.obs = Observability()
        self.result = run_upgrade_experiment(seed=5, n_routers=16,
                                             duration=8.0, obs=self.obs)
        self.fig = self.result.figures

    def test_incompatible_rollout_vetoed(self):
        assert self.fig["vetoed"] is True
        assert self.fig["veto_reason"].startswith("wire-incompatible")
        assert "field-layout-changed" in self.fig["veto_reason"]
        assert self.fig["vetoes"] == 1

    def test_no_canary_packet_ever_flowed(self):
        # The incompatible generation was never installed anywhere —
        # the strongest form of "no canary packet": there was no node
        # that could have emitted or decoded one.
        assert self.fig["incompat_installed_anywhere"] is False
        # And the event log agrees: the veto precedes any install of
        # the incompatible candidate (there is none at all).
        events = [e.to_dict() for e in self.obs.events.filter()]
        veto_idx = [i for i, e in enumerate(events)
                    if e.get("kind") == "rollout"
                    and e.get("action") == "veto"]
        assert len(veto_idx) == 1
        incompat_sha = self.fig["veto_reason"]  # sha12 appears in it
        installs_after = [
            e for e in events[veto_idx[0]:]
            if e.get("kind") == "deploy" and e.get("action") == "install"
            and e.get("sha", "")[:12] in incompat_sha]
        assert installs_after == []

    def test_compatible_rollout_promotes_fleet_wide(self):
        assert self.fig["promoted"] is True
        assert self.fig["on_compat_at_end"] is True
        assert self.fig["quarantined_at_end"] == 0
        assert self.fig["healthy"] is True
        assert len(self.fig["final_generations"]) == 16
        assert len(set(self.fig["final_generations"].values())) == 1

    def test_wire_verdict_recorded_per_old_generation(self):
        verdicts = self.fig["wire_verdicts"]
        assert len(verdicts) == 1
        (verdict,) = verdicts.values()
        assert verdict.startswith("incompatible")

    def test_obsdump_lifecycle_fold_counts_the_veto(self):
        events = [e.to_dict() for e in self.obs.events.filter()]
        summary = lifecycle_summary(events)
        assert summary["totals"]["vetoed"] == 1
        (veto,) = summary["vetoes"]
        assert veto["nodes"] == 16
        assert veto["verdict"].startswith("incompatible")


class TestByteIdenticalWhenCompatible:
    def test_checker_on_equals_checker_off(self):
        """The gate is free for compatible rollouts: same seed, same
        traffic, wire_check on vs off — the delivery stream (times
        and payloads, digested) is byte-identical."""
        on = run_upgrade_experiment(seed=5, n_routers=16, duration=8.0,
                                    wire_check=True,
                                    attempt_incompatible=False)
        off = run_upgrade_experiment(seed=5, n_routers=16,
                                     duration=8.0, wire_check=False,
                                     attempt_incompatible=False)
        assert on.figures["delivered"] == off.figures["delivered"] > 0
        assert (on.figures["delivery_digest"]
                == off.figures["delivery_digest"])
        assert on.figures["healthy"] and off.figures["healthy"]

    def test_checker_off_lets_the_incompatible_rollout_through(self):
        """The control run: without the gate the incompatible
        generation reaches canary nodes — proof the veto is what
        prevents mixed-generation traffic, not an accident of the
        drill."""
        result = run_upgrade_experiment(seed=5, n_routers=16,
                                        duration=8.0, wire_check=False)
        assert result.figures["vetoed"] is False
        assert result.figures["incompat_installed_anywhere"] is True


class TestDrillDeterminismAndHarness:
    def test_same_seed_same_record(self):
        a = run_upgrade_experiment(seed=5, n_routers=16, duration=8.0)
        b = run_upgrade_experiment(seed=5, n_routers=16, duration=8.0)
        assert a.record() == b.record()

    def test_upgrade_scenario_in_chaos_matrix(self, tmp_path):
        scenario = next(s for s in matrix("chaos")
                        if s.name == "chaos/upgrade-16")
        assert "chaos-smoke" in scenario.tags
        store = ResultStore(tmp_path)
        Runner(store, workers=1).sweep([scenario])
        (line,) = [json.loads(line) for line in
                   (store.root / "results.jsonl").read_text()
                   .splitlines()]
        figures = line["record"]["figures"]
        assert figures["healthy"] is True
        assert figures["vetoed"] is True
        assert figures["quarantined_at_end"] == 0
