"""Failure injection: lossy media, dying servers, malformed traffic."""

import pytest

from repro.apps.http import HttpClientWorker, HttpServer, generate_trace
from repro.apps.mpeg import run_mpeg_experiment
from repro.asps import audio_client_asp, audio_router_asp
from repro.net import Network
from repro.net.packet import udp_packet
from repro.net.routing import compute_routes
from repro.runtime import Deployment, PlanPLayer


class TestLossyMedia:
    def test_audio_asps_survive_packet_loss(self):
        """Frames lost on a lossy segment must not wedge the ASPs."""
        from repro.apps.audio.client import AudioClient
        from repro.apps.audio.source import AudioSource

        net = Network(seed=13)
        src = net.add_host("src")
        router = net.add_router("router")
        client = net.add_host("client")
        net.link(src, router, bandwidth=100e6)
        seg = net.segment("lan", loss_rate=0.2)
        net.attach(router, seg)
        net.attach(client, seg)
        net.finalize()
        group = net.multicast_group("224.1.1.1", src, [client])

        deployment = Deployment()
        deployment.install(audio_router_asp(), [router])
        deployment.install(audio_client_asp(), [client])

        source = AudioSource(net, src, group)
        sink = AudioClient(net, client, group)
        source.start(until=10.0)
        net.run(until=10.5)

        assert source.frames_sent == 501  # t=0..10 inclusive
        # ~20% loss: most frames arrive, gaps are detected, no errors.
        assert 300 < sink.frames_received < 480
        assert sink.silent_periods
        assert router.planp.stats.runtime_errors == 0
        assert sink.restored

    def test_http_cluster_on_lossy_client_links(self):
        net = Network(seed=13)
        gateway = net.add_router("gw")
        server_host = net.add_host("s0")
        client_host = net.add_host("c0")
        net.link(server_host, gateway, bandwidth=100e6)
        net.link(client_host, gateway, loss_rate=0.05)
        net.finalize()
        trace = generate_trace(500, seed=13)
        server = HttpServer(net, server_host, trace.sizes)
        worker = HttpClientWorker(net, client_host, server_host.address,
                                  trace)
        worker.start()
        net.run(until=20.0)
        assert len(worker.completed) > 20  # TCP rides out the loss
        assert all(r.bytes_received == trace.sizes[r.path]
                   for r in worker.completed)


class TestServerFailure:
    def test_cluster_survives_one_server_death(self):
        """Kill one physical server mid-run; the ASP regenerated for the
        surviving server keeps the service up (the paper's
        maintenance-of-the-cluster claim)."""
        from repro.asps import http_gateway_asp

        net = Network(seed=14)
        gateway = net.add_router("gw")
        s0 = net.add_host("s0")
        s1 = net.add_host("s1")
        client = net.add_host("c")
        net.link(s0, gateway, bandwidth=100e6)
        net.link(s1, gateway, bandwidth=100e6)
        net.link(client, gateway)
        net.finalize()
        trace = generate_trace(1000, seed=14)
        HttpServer(net, s0, trace.sizes)
        HttpServer(net, s1, trace.sizes)
        virtual = gateway.interfaces[0].address

        deployment = Deployment()
        deployment.install(
            http_gateway_asp(str(virtual),
                             [str(s0.address), str(s1.address)]),
            [gateway], source_name="gw-2servers")

        worker = HttpClientWorker(net, client, virtual, trace)
        worker.start()

        def kill_s1_and_repair():
            # s1 dies: remove it from routing and re-point the gateway.
            alive = [n for n in net.nodes if n is not s1]
            compute_routes(alive)
            deployment.install(
                http_gateway_asp(str(virtual), [str(s0.address)]),
                [gateway], source_name="gw-1server")

        net.sim.at(5.0, kill_s1_and_repair)
        # A connection caught on the dead server needs its retransmission
        # budget (~12 s of backoff) before the client retries.
        net.run(until=25.0)
        before = [r for r in worker.completed if r.completed < 5.0]
        after = [r for r in worker.completed if r.completed > 18.0]
        assert before and after  # service continued after the failure


class TestFaultDrills:
    def test_link_down_during_audio_broadcast(self):
        """Failure drill: the fig. 5 LAN segment goes dark for two
        seconds mid-broadcast.  The client detects the silence, the
        stream restores when the segment heals, and nothing wedges."""
        from repro.apps.audio.client import AudioClient
        from repro.apps.audio.source import AudioSource

        net = Network(seed=16)
        src = net.add_host("src")
        router = net.add_router("router")
        client = net.add_host("client")
        net.link(src, router, bandwidth=100e6)
        seg = net.segment("lan")
        net.attach(router, seg)
        net.attach(client, seg)
        net.finalize()
        group = net.multicast_group("224.1.1.1", src, [client])

        deployment = Deployment()
        deployment.install(audio_router_asp(), [router])
        deployment.install(audio_client_asp(), [client])

        source = AudioSource(net, src, group)
        sink = AudioClient(net, client, group)
        net.faults.script([
            (3.0, net.faults.link_down, seg),
            (5.0, net.faults.link_up, seg),
        ])
        source.start(until=10.0)
        net.run(until=10.5)

        assert source.frames_sent == 501
        # ~2 s of a 10 s broadcast dropped: roughly 100 frames lost.
        assert 380 <= sink.frames_received <= 420
        assert sink.silent_periods  # the outage was detected...
        assert sink.restored        # ...and the stream came back
        assert router.planp.stats.runtime_errors == 0
        assert len(net.faults.log) == 2

    def test_router_crash_loses_asp_until_reinstalled(self):
        """A crashed router loses its downloaded program (volatile
        state); after restart it forwards by standard IP processing
        until an operator — or a deployment service manifest — puts the
        ASP back."""
        net = Network(seed=17)
        a = net.add_host("a")
        r = net.add_router("r")
        b = net.add_host("b")
        net.link(a, r)
        net.link(r, b)
        net.finalize()
        layer = PlanPLayer(r)
        layer.install(audio_router_asp())
        assert layer.loaded is not None
        net.faults.crash("r")
        net.faults.restart("r")
        assert layer.loaded is None
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        a.ip_send(udp_packet(a.address, b.address, 1, 7000, b"frame"))
        net.run()
        assert len(got) == 1  # standard forwarding still works
        assert r.planp.stats.packets_processed == 0


class TestMalformedTraffic:
    def test_garbage_on_audio_port_is_forwarded_not_fatal(self):
        net = Network(seed=15)
        a = net.add_host("a")
        r = net.add_router("r")
        b = net.add_host("b")
        net.link(a, r)
        net.link(r, b)
        net.finalize()
        layer = PlanPLayer(r)
        layer.install(audio_router_asp())
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        # A 2-byte "audio" packet: blobSub in the ASP would fail; its
        # handler forwards the packet untouched.
        a.ip_send(udp_packet(a.address, b.address, 1, 7000, b"xy"))
        net.run()
        assert len(got) == 1
        assert layer.stats.runtime_errors == 0  # handled in PLAN-P

    def test_monitor_ignores_malformed_queries(self):
        result = run_mpeg_experiment(use_asps=True, n_clients=2,
                                     duration=10.0)
        assert result.modes == ["direct", "shared"]
