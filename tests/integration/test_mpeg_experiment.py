"""Integration: point-to-point to multipoint MPEG (paper §3.3)."""

import pytest

from repro.apps.mpeg import run_mpeg_experiment


@pytest.fixture(scope="module")
def shared():
    return run_mpeg_experiment(use_asps=True, n_clients=3,
                               duration=15.0, warmup=2.0)


@pytest.fixture(scope="module")
def unshared():
    return run_mpeg_experiment(use_asps=False, n_clients=3,
                               duration=15.0, warmup=2.0)


class TestSharing:
    def test_single_server_session_with_asps(self, shared):
        assert shared.server_sessions == 1

    def test_one_session_per_client_without(self, unshared):
        assert unshared.server_sessions == 3

    def test_later_clients_capture(self, shared):
        assert shared.modes == ["direct", "shared", "shared"]

    def test_uplink_traffic_reduced(self, shared, unshared):
        assert shared.uplink_bytes < 0.45 * unshared.uplink_bytes

    def test_no_traffic_rate_degradation(self, shared):
        """Every viewer gets (essentially) the nominal frame rate."""
        assert shared.all_clients_at_full_rate

    def test_shared_and_direct_rates_match(self, shared):
        rates = shared.per_client_rate
        assert max(rates) - min(rates) < 0.1 * shared.nominal_fps

    def test_all_clients_receive_frames(self, shared):
        assert all(n > 100 for n in shared.per_client_frames)


class TestScalingClients:
    def test_uplink_constant_in_client_count(self):
        two = run_mpeg_experiment(use_asps=True, n_clients=2,
                                  duration=12.0)
        four = run_mpeg_experiment(use_asps=True, n_clients=4,
                                   duration=12.0)
        # One upstream stream regardless of audience size.
        assert four.server_sessions == 1
        assert four.uplink_bytes == pytest.approx(two.uplink_bytes,
                                                  rel=0.1)

    def test_without_asps_uplink_scales_linearly(self):
        two = run_mpeg_experiment(use_asps=False, n_clients=2,
                                  duration=12.0)
        four = run_mpeg_experiment(use_asps=False, n_clients=4,
                                   duration=12.0)
        assert four.uplink_bytes > 1.6 * two.uplink_bytes


class TestBackends:
    def test_interpreter_backend_shares_too(self):
        result = run_mpeg_experiment(use_asps=True, n_clients=2,
                                     duration=10.0,
                                     backend="interpreter")
        assert result.server_sessions == 1
        assert result.modes == ["direct", "shared"]
