"""Integration: the audio adaptation experiment end to end (figures 6/7),
scaled down for test time."""

import pytest

from repro.apps.audio import run_audio_experiment
from repro.asps.audio import FMT_MONO16, FMT_MONO8, FMT_STEREO16


@pytest.fixture(scope="module")
def fig6():
    # 45 simulated seconds: phase breakpoints at 10 / 22 / 34 s.
    return run_audio_experiment(duration=45.0)


class TestFig6Shape:
    def test_unloaded_phase_full_stereo(self, fig6):
        assert fig6.qualities_between(1, 9) == {FMT_STEREO16}
        assert fig6.mean_kbps_between(1, 9) == pytest.approx(176, abs=8)

    def test_large_load_forces_8bit_mono(self, fig6):
        assert fig6.dominant_quality_between(12, 21) == FMT_MONO8
        assert fig6.mean_kbps_between(12, 21) == pytest.approx(44, abs=8)

    def test_medium_load_oscillates(self, fig6):
        qualities = fig6.qualities_between(24, 33)
        assert FMT_MONO8 in qualities and FMT_MONO16 in qualities
        mean = fig6.mean_kbps_between(24, 33)
        assert 44 < mean < 88  # strictly between the two levels

    def test_small_load_settles_16bit_mono(self, fig6):
        assert fig6.dominant_quality_between(36, 44) == FMT_MONO16
        assert fig6.mean_kbps_between(36, 44) == pytest.approx(88, abs=8)

    def test_adaptation_is_fast(self, fig6):
        """Within ~2 s of the large load (paper: 'immediate')."""
        assert fig6.dominant_quality_between(12, 14) == FMT_MONO8

    def test_client_app_never_sees_degraded_frames(self, fig6):
        assert fig6.restored

    def test_no_frame_loss_with_adaptation(self, fig6):
        assert fig6.frames_received == fig6.frames_sent
        assert fig6.silent_periods == 0


class TestFig7Gaps:
    def test_adaptation_removes_gaps_under_heavy_load(self):
        heavy = 1_900_000
        without = run_audio_experiment(adaptation=False, duration=25.0,
                                       constant_load_bps=heavy)
        with_asp = run_audio_experiment(adaptation=True, duration=25.0,
                                        constant_load_bps=heavy)
        assert without.silent_periods > 10
        assert with_asp.silent_periods < without.silent_periods / 5
        assert with_asp.frames_received > without.frames_received

    def test_no_load_no_gaps_either_way(self):
        for adaptation in (False, True):
            result = run_audio_experiment(adaptation=adaptation,
                                          duration=10.0,
                                          constant_load_bps=0)
            assert result.silent_periods == 0


class TestBackends:
    @pytest.mark.parametrize("backend", ["interpreter", "source"])
    def test_other_engines_give_same_adaptation(self, backend):
        result = run_audio_experiment(duration=20.0, backend=backend,
                                      constant_load_bps=1_700_000)
        assert result.dominant_quality_between(3, 19) == FMT_MONO8
        assert result.restored
