"""The end-to-end poisoned-ASP drill (the PR's acceptance scenario).

A known-bad ASP (raises on every payload byte divisible by 5) is
deployed over a 16-node topology: the canary health gate must abort the
staged rollout; a force-promote must be quarantined by the per-node
circuit breakers and automatically rolled back to generation N−1 on
every node, with traffic recovering to within 5% of the pre-deploy
baseline — deterministic under the seed, byte-identical through the
parallel harness.
"""

import json

from repro.experiments.chaos import run_chaos_experiment
from repro.harness import ResultStore, Runner, Scenario, matrix


class TestPoisonedAspDrill:
    def setup_method(self):
        self.result = run_chaos_experiment(profile="drill", seed=5,
                                           n_routers=16, duration=12.0)
        self.fig = self.result.figures

    def test_canary_gate_aborts_bad_rollout(self):
        assert self.fig["canary_aborted"] is True
        assert "error budget" in self.fig["abort_reason"] \
            or "errors" in self.fig["abort_reason"]

    def test_force_promote_is_quarantined_and_rolled_back(self):
        assert self.fig["force_promoted"] is True
        assert self.fig["trips"] >= 16  # every node's breaker fired
        assert self.fig["rollbacks"] >= 1
        assert self.fig["quarantined_at_end"] == 0

    def test_every_node_back_on_previous_generation(self):
        generations = self.fig["final_generations"]
        assert len(generations) == 16
        assert len(set(generations.values())) == 1  # converged
        assert self.fig["healthy"] is True

    def test_traffic_recovers_within_5_percent(self):
        assert self.fig["baseline_delivered"] > 0
        assert abs(self.fig["recovery_ratio"] - 1.0) <= 0.05

    def test_lifecycle_metrics_snapshot(self):
        metrics = self.result.metrics
        assert metrics["lifecycle.managed_nodes"] == 16
        assert metrics["lifecycle.quarantined_nodes"] == 0
        assert metrics["lifecycle.rollbacks"] >= 1


class TestDrillDeterminism:
    def test_same_seed_same_record(self):
        a = run_chaos_experiment(profile="drill", seed=5, n_routers=16,
                                 duration=12.0)
        b = run_chaos_experiment(profile="drill", seed=5, n_routers=16,
                                 duration=12.0)
        assert a.record() == b.record()

    def test_byte_identical_through_parallel_harness(self, tmp_path):
        scenario = next(s for s in matrix("chaos")
                        if s.name == "chaos/drill-16")
        texts = []
        for workers in (1, 2):
            store = ResultStore(tmp_path / f"w{workers}")
            Runner(store, workers=workers).sweep([scenario])
            (line,) = [json.loads(line) for line in
                       (store.root / "results.jsonl").read_text()
                       .splitlines()]
            texts.append(json.dumps(line["record"], sort_keys=True))
        assert texts[0] == texts[1]
        assert json.loads(texts[0])["figures"]["healthy"] is True

    def test_chaos_smoke_matrix_ends_healthy(self, tmp_path):
        """The CI gate: every chaos-smoke scenario converges back to
        healthy with zero quarantined nodes."""
        scenarios = [s for s in matrix("chaos")
                     if "chaos-smoke" in s.tags]
        assert scenarios
        store = ResultStore(tmp_path / "smoke")
        runner = Runner(store, workers=1)
        runner.sweep(scenarios)
        for line in (store.root / "results.jsonl").read_text() \
                .splitlines():
            record = json.loads(line)["record"]
            figures = record["figures"]
            assert figures["healthy"] is True, record["name"]
            assert figures["quarantined_at_end"] == 0, record["name"]
