"""The shipped examples run to completion (their asserts are checks)."""

import runpy
import sys

import pytest


def run_example(name, monkeypatch):
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(f"examples/{name}", run_name="__main__")


def test_quickstart(monkeypatch, capsys):
    run_example("quickstart.py", monkeypatch)
    assert "quickstart OK" in capsys.readouterr().out


def test_verifier_demo(monkeypatch, capsys):
    run_example("verifier_demo.py", monkeypatch)
    out = capsys.readouterr().out
    assert out.count("ACCEPTED") == 5
    assert out.count("REJECTED") == 3


def test_network_deployment(monkeypatch, capsys):
    run_example("network_deployment.py", monkeypatch)
    out = capsys.readouterr().out
    assert "installed" in out and "REJECTED" in out


def test_image_distillation(monkeypatch, capsys):
    run_example("image_distillation.py", monkeypatch)
    assert "faster" in capsys.readouterr().out


def test_active_trace(monkeypatch, capsys):
    run_example("active_trace.py", monkeypatch)
    assert "active traceroute OK" in capsys.readouterr().out
