"""Integration tests for the paper's inline code figures.

Figure 2's load-balancing fragment is covered by the HTTP experiment;
here figure 4's overloaded-channel example runs verbatim-as-possible on
a simulated network, and §2.3's extension claim — "extending the
interpreter with a new primitive involves defining two C functions" —
is exercised by registering a primitive at run time and watching every
engine pick it up.
"""

import pytest

from repro.net import Network
from repro.net.packet import tcp_packet
from repro.runtime import PlanPLayer

FIGURE4 = """
val CmdA : int = 1
val CmdB : int = 2

channel network(ps : unit, ss : unit, p : ip*tcp*char*int) is
  if charPos(#3 p) = CmdA then
    (print("CmdA: "); println(#4 p); deliver(p); (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))

channel network(ps : unit, ss : unit, p : ip*tcp*char*bool) is
  if charPos(#3 p) = CmdB then
    (print("CmdB: "); println(#4 p); deliver(p); (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))
"""


class TestFigure4:
    """Typed command packets dispatch on payload shape and tag byte."""

    def _run(self, payload: bytes):
        net = Network(seed=9)
        a = net.add_host("a")
        b = net.add_host("b")
        net.link(a, b)
        net.finalize()
        layer = PlanPLayer(b)
        layer.install(FIGURE4)
        a.ip_send(tcp_packet(a.address, b.address, 5, 6, payload))
        net.run(until=1.0)
        return layer, b

    def test_cmd_a_packet(self):
        # char \x01 (CmdA) + 4-byte int: matches the ip*tcp*char*int
        # overload; the tag selects the CmdA branch.
        payload = bytes([1]) + (1234).to_bytes(4, "big")
        layer, b = self._run(payload)
        assert layer.console == ["CmdA: ", "1234\n"]
        assert b.stats.delivered == 1

    def test_cmd_b_packet(self):
        # char \x02 (CmdB) + bool byte: 6-byte CmdA shape does not fit,
        # the 2-byte-payload... the bool overload takes 1+1 bytes.
        payload = bytes([2, 1])
        layer, b = self._run(payload)
        assert layer.console == ["CmdB: ", "true\n"]

    def test_unknown_command_forwarded(self):
        payload = bytes([9]) + (0).to_bytes(4, "big")
        layer, b = self._run(payload)
        assert layer.console == []
        assert b.stats.delivered == 1  # self-addressed forward delivers


class TestPrimitiveExtension:
    """§2.3: add a primitive, and the whole toolchain has it."""

    def test_new_primitive_reaches_all_engines(self):
        from repro.interp import RecordingContext
        from repro.interp.primitives import PRIMITIVES, register, sig
        from repro.jit import make_engine
        from repro.lang import parse, typecheck
        from repro.lang import types as T

        name = "testDouble__"
        if name not in PRIMITIVES:  # idempotent across test orders
            register(name, sig([T.INT], T.INT),
                     lambda ctx, a: a[0] * 2)
        try:
            src = (f"channel network(ps : int, ss : unit, "
                   f"p : ip*tcp*blob) is "
                   f"(OnRemote(network, p); ({name}(ps) + 1, ss))")
            info = typecheck(parse(src))
            from ..conftest import tcp_packet_value

            packet = tcp_packet_value()
            results = []
            for backend in ("interpreter", "closure", "source"):
                ctx = RecordingContext()
                engine = make_engine(info, backend, ctx)
                decl = info.channels["network"][0]
                ps, ss = 5, None
                ps, ss = engine.run_channel(decl, ps, ss, packet, ctx)
                results.append(ps)
            assert results == [11, 11, 11]
        finally:
            PRIMITIVES.pop(name, None)

    def test_duplicate_registration_rejected(self):
        from repro.interp.primitives import register, sig
        from repro.lang import types as T

        with pytest.raises(ValueError, match="already registered"):
            register("tcpDst", sig([T.TCP], T.INT), lambda c, a: 0)
