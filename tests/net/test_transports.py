"""UDP and TCP transport tests."""

import pytest

from repro.net import Network
from repro.net.tcp import TcpState


def pair(loss_rate=0.0, **link_kwargs):
    net = Network(seed=9)
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, loss_rate=loss_rate, **link_kwargs)
    net.finalize()
    return net, a, b


class TestUdp:
    def test_datagram_delivery(self):
        net, a, b = pair()
        sock_b = net.udp(b).bind(5000)
        got = []
        sock_b.on_datagram = lambda d, src, sp: got.append((d, str(src),
                                                            sp))
        sock_a = net.udp(a).bind(6000)
        sock_a.sendto(b.address, 5000, b"ping")
        net.run()
        assert got == [(b"ping", str(a.address), 6000)]

    def test_unbound_port_discards(self):
        net, a, b = pair()
        net.udp(b)  # stack exists, nothing bound
        sock_a = net.udp(a).bind()
        sock_a.sendto(b.address, 1234, b"void")
        net.run()
        assert net.udp(b).datagrams_in == 0

    def test_ephemeral_ports_unique(self):
        net, a, _b = pair()
        stack = net.udp(a)
        ports = {stack.bind().port for _ in range(10)}
        assert len(ports) == 10

    def test_bind_conflict(self):
        net, a, _b = pair()
        net.udp(a).bind(7)
        with pytest.raises(ValueError):
            net.udp(a).bind(7)

    def test_close_releases_port(self):
        net, a, _b = pair()
        sock = net.udp(a).bind(7)
        sock.close()
        net.udp(a).bind(7)  # no error

    def test_buffered_when_no_callback(self):
        net, a, b = pair()
        sock_b = net.udp(b).bind(5000)
        net.udp(a).bind(6000).sendto(b.address, 5000, b"x")
        net.run()
        assert len(sock_b.received) == 1


class TestTcpBasics:
    def test_connect_and_transfer(self):
        net, a, b = pair()
        received = bytearray()

        def on_accept(conn):
            conn.on_data = lambda c, d: received.extend(d)

        net.tcp(b).listen(80, on_accept)
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_connected = lambda c: c.send(b"hello world")
        net.run(until=5.0)
        assert bytes(received) == b"hello world"
        assert conn.state is TcpState.ESTABLISHED

    def test_large_transfer_segments(self):
        net, a, b = pair()
        payload = bytes(range(256)) * 250  # 64 kB, many MSS segments
        received = bytearray()

        def on_accept(conn):
            conn.on_data = lambda c, d: received.extend(d)

        net.tcp(b).listen(80, on_accept)
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_connected = lambda c: (c.send(payload), c.close())
        net.run(until=10.0)
        assert bytes(received) == payload

    def test_bidirectional(self):
        net, a, b = pair()
        at_a, at_b = bytearray(), bytearray()

        def on_accept(conn):
            conn.on_data = lambda c, d: (at_b.extend(d), c.send(b"pong"))

        net.tcp(b).listen(80, on_accept)
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_data = lambda c, d: at_a.extend(d)
        conn.on_connected = lambda c: c.send(b"ping")
        net.run(until=5.0)
        assert bytes(at_b) == b"ping"
        assert bytes(at_a) == b"pong"

    def test_connect_to_closed_port_fails(self):
        net, a, b = pair()
        net.tcp(b)  # stack, no listener
        failures = []
        conn = net.tcp(a).connect(b.address, 81)
        conn.on_fail = lambda c: failures.append(c)
        net.run(until=5.0)
        assert failures
        assert conn.state is TcpState.CLOSED

    def test_close_handshake_frees_state(self):
        net, a, b = pair()

        def on_accept(conn):
            conn.on_close = lambda c: c.close()

        net.tcp(b).listen(80, on_accept)
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_connected = lambda c: c.close()
        net.run(until=10.0)
        assert net.tcp(a).open_connections == 0
        assert net.tcp(b).open_connections == 0

    def test_send_after_close_rejected(self):
        net, a, b = pair()
        net.tcp(b).listen(80, lambda c: None)
        conn = net.tcp(a).connect(b.address, 80)
        errors = []

        def on_connected(c):
            c.close()
            try:
                c.send(b"late")
            except Exception as err:
                errors.append(err)

        conn.on_connected = on_connected
        net.run(until=5.0)
        assert errors

    def test_many_parallel_connections(self):
        net, a, b = pair()
        done = []

        def on_accept(conn):
            conn.on_data = lambda c, d: (c.send(d), c.close())

        net.tcp(b).listen(80, on_accept)
        for i in range(20):
            conn = net.tcp(a).connect(b.address, 80)
            conn.on_connected = lambda c: c.send(b"req")
            conn.on_data = lambda c, d: done.append(d)
        net.run(until=10.0)
        assert len(done) == 20


class TestTcpLoss:
    @pytest.mark.parametrize("loss", [0.02, 0.10, 0.25])
    def test_transfer_survives_loss(self, loss):
        net, a, b = pair(loss_rate=loss)
        payload = b"q" * 30_000
        received = bytearray()
        closed = []

        def on_accept(conn):
            conn.on_data = lambda c, d: received.extend(d)
            conn.on_close = lambda c: closed.append("server")

        net.tcp(b).listen(80, on_accept)
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_connected = lambda c: (c.send(payload), c.close())
        net.run(until=120.0)
        assert bytes(received) == payload

    def test_retransmissions_counted(self):
        net, a, b = pair(loss_rate=0.2)
        received = bytearray()

        def on_accept(conn):
            conn.on_data = lambda c, d: received.extend(d)

        net.tcp(b).listen(80, on_accept)
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_connected = lambda c: c.send(b"r" * 20_000)
        net.run(until=120.0)
        assert bytes(received) == b"r" * 20_000
        assert net.tcp(a).retransmissions > 0

    def test_total_loss_gives_up(self):
        net, a, b = pair(loss_rate=1.0)
        failures = []
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_fail = lambda c: failures.append(c)
        net.run(until=120.0)
        assert failures
        assert net.tcp(a).open_connections == 0

    def test_in_order_delivery_despite_reordering_loss(self):
        net, a, b = pair(loss_rate=0.15)
        chunks = []

        def on_accept(conn):
            conn.on_data = lambda c, d: chunks.append(bytes(d))

        net.tcp(b).listen(80, on_accept)
        payload = bytes(i % 256 for i in range(50_000))
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_connected = lambda c: c.send(payload)
        net.run(until=120.0)
        assert b"".join(chunks) == payload  # cumulative, ordered
