"""Node behaviour, routing and multicast tests."""

import pytest

from repro.net import Network
from repro.net.packet import udp_packet
from repro.net.routing import compute_routes


def line_topology():
    """a -- r1 -- r2 -- b"""
    net = Network(seed=2)
    a = net.add_host("a")
    r1 = net.add_router("r1")
    r2 = net.add_router("r2")
    b = net.add_host("b")
    net.link(a, r1)
    net.link(r1, r2)
    net.link(r2, b)
    net.finalize()
    return net, a, r1, r2, b


class TestForwarding:
    def test_multi_hop_delivery(self):
        net, a, r1, r2, b = line_topology()
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"hi"))
        net.run()
        assert len(got) == 1
        assert r1.stats.forwarded == 1
        assert r2.stats.forwarded == 1

    def test_ttl_decremented_per_hop(self):
        net, a, _r1, _r2, b = line_topology()
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"hi"))
        net.run()
        assert got[0].ip.ttl == 62  # two router hops

    def test_ttl_expiry_drops(self):
        net, a, r1, _r2, b = line_topology()
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        packet = udp_packet(a.address, b.address, 1, 2, b"hi")
        packet.ip = packet.ip.with_ttl(1)
        a.ip_send(packet)
        net.run()
        assert got == []
        assert r1.stats.dropped_ttl == 1

    def test_no_route_drop(self):
        net = Network(seed=0)
        a = net.add_host("a")
        b = net.add_host("b")
        net.link(a, b)
        net.finalize()
        from repro.net.addresses import HostAddr

        a.ip_send(udp_packet(a.address, HostAddr.parse("99.9.9.9"),
                             1, 2, b""))
        net.run()
        assert a.stats.dropped_no_route == 1

    def test_self_addressed_delivers_locally(self):
        net, a, *_rest = line_topology()
        got = []
        a.delivery_taps.append(lambda p: got.append(p))
        a.ip_send(udp_packet(a.address, a.address, 1, 2, b"loop"))
        assert len(got) == 1

    def test_host_does_not_forward(self):
        net = Network(seed=0)
        a, b, c = net.add_host("a"), net.add_host("b"), net.add_host("c")
        seg = net.segment("lan")
        for h in (a, b, c):
            net.attach(h, seg)
        net.finalize()
        # a sends to an off-segment address; b and c must not forward.
        from repro.net.addresses import HostAddr

        a.ip_send(udp_packet(a.address, HostAddr.parse("88.8.8.8"),
                             1, 2, b""))
        net.run()
        assert b.stats.forwarded == 0
        assert c.stats.forwarded == 0


class TestRoutingTable:
    def test_routes_are_symmetric(self):
        net, a, r1, r2, b = line_topology()
        assert a.routes.lookup(b.address) is not None
        assert b.routes.lookup(a.address) is not None

    def test_next_hop_interface_is_correct(self):
        net, a, r1, r2, b = line_topology()
        out = r1.routes.lookup(b.address)
        assert out in r1.interfaces
        # r1's route to b heads toward r2, i.e. shares a medium with r2.
        r2_media = {id(i.medium) for i in r2.interfaces}
        assert id(out.medium) in r2_media

    def test_recompute_after_node_removal(self):
        """Fault injection: recompute routes around a dead router."""
        net = Network(seed=0)
        a = net.add_host("a")
        r1 = net.add_router("r1")
        r2 = net.add_router("r2")
        b = net.add_host("b")
        net.link(a, r1)
        net.link(a, r2)
        net.link(r1, b)
        net.link(r2, b)
        net.finalize()
        # Kill whichever router a currently routes through.
        dead = r1 if a.routes.lookup(b.address) in [
            i for i in a.interfaces
            if id(i.medium) in {id(j.medium) for j in r1.interfaces}] \
            else r2
        alive = [n for n in net.nodes if n is not dead]
        compute_routes(alive)
        got = []
        b.delivery_taps.append(lambda p: got.append(p))
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        net.run()
        assert len(got) == 1


class TestMulticast:
    def multicast_net(self):
        net = Network(seed=0)
        src = net.add_host("src")
        r = net.add_router("r")
        c1 = net.add_host("c1")
        c2 = net.add_host("c2")
        other = net.add_host("other")
        net.link(src, r)
        seg = net.segment("lan")
        for h in (r, c1, c2, other):
            net.attach(h, seg)
        net.finalize()
        group = net.multicast_group("224.5.5.5", src, [c1, c2])
        return net, src, r, c1, c2, other, group

    def test_joined_hosts_receive(self):
        net, src, r, c1, c2, other, group = self.multicast_net()
        got = {"c1": 0, "c2": 0, "other": 0}

        def tap(name):
            return lambda p: got.__setitem__(name, got[name] + 1)

        c1.delivery_taps.append(tap("c1"))
        c2.delivery_taps.append(tap("c2"))
        other.delivery_taps.append(tap("other"))
        src.ip_send(udp_packet(src.address, group, 1, 2, b"m"))
        net.run()
        assert got == {"c1": 1, "c2": 1, "other": 0}

    def test_one_transmission_on_shared_segment(self):
        net, src, r, c1, c2, other, group = self.multicast_net()
        src.ip_send(udp_packet(src.address, group, 1, 2, b"m"))
        net.run()
        # The router forwards once onto the segment (not per receiver).
        assert r.stats.forwarded == 1

    def test_leave_group(self):
        net, src, r, c1, c2, other, group = self.multicast_net()
        c2.leave_group(group)
        got = []
        c2.delivery_taps.append(lambda p: got.append(p))
        src.ip_send(udp_packet(src.address, group, 1, 2, b"m"))
        net.run()
        assert got == []

    def test_join_validation(self):
        net, src, *_ = self.multicast_net()
        from repro.net.addresses import HostAddr

        with pytest.raises(ValueError):
            src.join_group(HostAddr.parse("10.0.0.1"))
