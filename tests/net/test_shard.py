"""Unit tests for the sharded core (DESIGN §13): partition
validation, the boundary-message protocol, the per-segment metric
namespace, and the window counters."""

import pickle

import pytest

from repro.experiments.result import deterministic_metrics
from repro.net.addresses import addr
from repro.net.packet import udp_packet
from repro.net.shard import BoundaryMessage, ShardError, build_plan
from repro.net.topology import Network
from repro.obs import Observability

SPORT = 7000


def linked_pair(*, segments=1, latency=0.002, **kwargs):
    net = Network(seed=3, name="pair", shard_segments=segments,
                  **kwargs)
    a, b = net.add_host("a"), net.add_host("b")
    net.link(a, b, latency=latency)
    return net, a, b


class TestPlanValidation:
    def test_default_partition_is_contiguous(self):
        net, a, b = linked_pair()
        net.finalize()
        plan = build_plan(net, 2)
        assert plan.assignment == {"a": 0, "b": 1}
        assert plan.cross_links == ["a--b"]
        assert plan.lookahead == 0.002

    def test_cut_segment_medium_rejected(self):
        net = Network(seed=3, name="segcut", shard_segments=2)
        a, b = net.add_host("a"), net.add_host("b")
        seg = net.segment("lan")
        net.attach(a, seg)
        net.attach(b, seg)
        with pytest.raises(ShardError, match="[Ss]egment"):
            net.finalize()

    def test_zero_latency_cut_rejected(self):
        net, a, b = linked_pair(segments=2, latency=0.0)
        with pytest.raises(ShardError, match="latency"):
            net.finalize()

    def test_lookahead_is_min_cut_latency(self):
        net = Network(seed=3, name="tri")
        hosts = [net.add_host(f"h{i}") for i in range(4)]
        net.link(hosts[0], hosts[1], latency=0.05)   # internal to 0
        net.link(hosts[1], hosts[2], latency=0.030)  # cut
        net.link(hosts[2], hosts[3], latency=0.007)  # internal to 1
        net.finalize()
        plan = build_plan(net, 2)
        assert plan.assignment == {"h0": 0, "h1": 0, "h2": 1, "h3": 1}
        assert plan.lookahead == 0.030
        assert plan.cross_links == ["h1--h2"]

    def test_cannot_shard_finer_than_nodes(self):
        net, a, b = linked_pair(segments=1)
        net.finalize()
        with pytest.raises(ShardError):
            build_plan(net, 3)


class TestBoundaryProtocol:
    def test_boundary_message_pickles_unchanged(self):
        msg = BoundaryMessage(
            link="a--b", sender_node="a", src_segment=0,
            dst_segment=1, arrival=1.5, lp=3, lseq=7,
            packet=udp_packet(addr("10.0.1.1"), addr("10.0.1.2"),
                              SPORT, SPORT, b"payload"))
        assert pickle.loads(pickle.dumps(msg)) == msg

    def test_boundary_counters_track_crossings(self):
        net, a, b = linked_pair(segments=2)
        net.finalize()
        sock = net.udp(b).bind(SPORT)
        net.udp(a).bind(SPORT).sendto(b.address, SPORT, b"x")
        net.run(until=0.1)
        runner = net._shard
        assert sock.received and sock.received[0][0] == b"x"
        assert runner.boundary_out[0] == 1
        assert runner.boundary_in[1] == 1
        assert runner.windows >= 1

    def test_horizon_stalls_counted_for_idle_segment(self):
        net, a, b = linked_pair(segments=2)
        net.finalize()
        # activity only in segment 0: segment 1 turns over empty
        # windows and the stall counter says so
        for k in range(3):
            a.sim.schedule(0.01 * (k + 1), lambda: None, context=a.ctx)
        net.run(until=0.1)
        runner = net._shard
        assert runner.windows >= 1
        assert runner.horizon_stalls[1] >= 1
        assert runner.boundary_out == [0, 0]


class TestSegmentMetricNamespace:
    def test_per_segment_scopes_carry_network_name(self):
        obs = Observability()
        net1 = Network(seed=1, name="alpha", shard_segments=2, obs=obs)
        a, b = net1.add_host("a"), net1.add_host("b")
        net1.link(a, b, latency=0.001)
        net1.finalize()
        net2 = Network(seed=1, name="beta", shard_segments=2, obs=obs)
        c, d = net2.add_host("c"), net2.add_host("d")
        net2.link(c, d, latency=0.001)
        net2.finalize()
        keys = set(net1.metrics_snapshot(include_global=False))
        # regression: per-segment sims must not collide with the
        # sim2/sim3 numbering of additional networks — each segment
        # scope is namespaced <sim-name>.<net-name>.<segment>
        for want in ("sim.alpha.0.events_processed",
                     "sim.alpha.1.events_processed",
                     "sim2.beta.0.events_processed",
                     "sim2.beta.1.events_processed",
                     "sim.now", "sim2.now"):
            assert want in keys, want

    def test_segment_scopes_are_filtered_from_records(self):
        net, a, b = linked_pair(segments=2)
        net.finalize()
        net.udp(b).bind(SPORT)
        net.udp(a).bind(SPORT).sendto(b.address, SPORT, b"x")
        net.run(until=0.1)
        snap = net.metrics_snapshot(include_global=False)
        assert any(k.startswith("sim.pair.") for k in snap)
        record = deterministic_metrics(snap)
        assert not any(k.startswith("sim.pair.") for k in record)
        assert "sim.events_processed" in record
