"""The sharded-core identity property (DESIGN §13): for any small
topology, traffic pattern, and fault timeline, running with 1, 2 or 4
segments produces byte-identical deterministic metrics and the
identical delivery stream.

This is the whole point of the formalized scheduling contract —
``(time, lp, lseq)`` keys are a pure function of (topology, seed), so
the conservative-parallel runner replays serial execution exactly,
faults, losses and all.
"""

import hashlib
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.result import deterministic_metrics
from repro.net.topology import Network

PORT = 6000

# grids keep drawn floats exactly representable and the state space
# meaningful (distinct latencies, send times that collide on purpose)
LATENCIES = (0.005, 0.01, 0.02)
TIMES = tuple(round(0.01 * i, 2) for i in range(1, 30))


@st.composite
def shard_cases(draw):
    n_routers = draw(st.integers(2, 4))
    hosts_per = draw(st.integers(1, 2))
    ring_lat = [draw(st.sampled_from(LATENCIES))
                for _ in range(n_routers)]
    loss_link = draw(st.integers(-1, n_routers - 1))
    n_hosts = n_routers * hosts_per
    sends = draw(st.lists(
        st.tuples(st.integers(0, n_hosts - 1),      # sender
                  st.integers(0, n_hosts - 1),      # destination
                  st.sampled_from(TIMES)),
        min_size=2, max_size=10))
    fault_ops = draw(st.lists(
        st.tuples(st.sampled_from(("link_down", "link_up", "crash",
                                   "restart")),
                  st.integers(0, n_routers - 1),
                  st.sampled_from(TIMES)),
        min_size=1, max_size=4))
    seed = draw(st.integers(0, 2**16))
    return dict(n_routers=n_routers, hosts_per=hosts_per,
                ring_lat=ring_lat, loss_link=loss_link, sends=sends,
                fault_ops=fault_ops, seed=seed)


def run_case(case: dict, segments: int) -> tuple[str, dict]:
    net = Network(seed=case["seed"], name="prop",
                  shard_segments=segments)
    routers = [net.add_router(f"r{i}")
               for i in range(case["n_routers"])]
    hosts = []
    for i, router in enumerate(routers):
        for h in range(case["hosts_per"]):
            host = net.add_host(f"r{i}h{h}")
            net.link(router, host, latency=0.001)
            hosts.append(host)
    rings = []
    for i, router in enumerate(routers):
        loss = 0.05 if i == case["loss_link"] else 0.0
        rings.append(net.link(router,
                              routers[(i + 1) % len(routers)],
                              latency=case["ring_lat"][i],
                              loss_rate=loss))
    net.finalize()

    deliveries = []
    socks = []
    for host in hosts:
        sock = net.udp(host).bind(PORT)

        def on_datagram(payload, src, src_port, *, host=host):
            deliveries.append((host.sim.current_event_key, host.name,
                               str(src), payload))

        sock.on_datagram = on_datagram
        socks.append(sock)
    for n, (src, dst, when) in enumerate(case["sends"]):
        payload = f"{src}->{dst}:{n}".encode()

        def send(*, sock=socks[src], dst_addr=hosts[dst].address,
                 payload=payload):
            sock.sendto(dst_addr, PORT, payload)

        hosts[src].sim.at(when, send, context=hosts[src].ctx)
    for op, i, when in case["fault_ops"]:
        if op == "link_down":
            net.faults.at(when, net.faults.link_down, rings[i])
        elif op == "link_up":
            net.faults.at(when, net.faults.link_up, rings[i])
        elif op == "crash":
            net.faults.at(when, net.faults.crash, f"r{i}")
        else:
            net.faults.at(when, net.faults.restart, f"r{i}")

    net.run(until=0.5)
    digest = hashlib.sha256()
    for (t, lp, lseq), name, src, payload in sorted(deliveries):
        digest.update(f"{t!r}/{lp}/{lseq} {name} {src} ".encode())
        digest.update(payload)
        digest.update(b"\n")
    metrics = deterministic_metrics(
        net.metrics_snapshot(include_global=False))
    return digest.hexdigest(), metrics


def canonical(metrics: dict) -> bytes:
    return json.dumps(metrics, sort_keys=True,
                      separators=(",", ":")).encode()


@settings(max_examples=20, deadline=None)
@given(shard_cases())
def test_sharded_runs_are_byte_identical_to_serial(case):
    serial_sha, serial_metrics = run_case(case, segments=1)
    for segments in (2, 4):
        sha, metrics = run_case(case, segments=segments)
        assert sha == serial_sha, \
            f"delivery stream diverged at {segments} segments"
        assert canonical(metrics) == canonical(serial_metrics), \
            f"metrics diverged at {segments} segments"
