"""Link, segment and monitor tests."""

import pytest

from repro.net import Network
from repro.net.monitor import LoadMonitor
from repro.net.packet import udp_packet


def two_hosts(bandwidth=8_000_000, latency=0.001, queue_limit=4,
              loss_rate=0.0):
    net = Network(seed=3)
    a = net.add_host("a")
    b = net.add_host("b")
    link = net.link(a, b, bandwidth=bandwidth, latency=latency,
                    queue_limit=queue_limit, loss_rate=loss_rate)
    net.finalize()
    return net, a, b, link


class TestLinkTiming:
    def test_serialization_plus_latency(self):
        net, a, b, _link = two_hosts(bandwidth=8_000_000, latency=0.001)
        arrivals = []
        b.delivery_taps.append(lambda p: arrivals.append(net.sim.now))
        # 972-byte payload + 28 header = 1000 B = 8000 bits -> 1 ms tx.
        p = udp_packet(a.address, b.address, 1, 2, b"x" * 972)
        a.ip_send(p)
        net.run()
        assert arrivals == [pytest.approx(0.002)]

    def test_back_to_back_serialize(self):
        net, a, b, _link = two_hosts(bandwidth=8_000_000, latency=0.0)
        arrivals = []
        b.delivery_taps.append(lambda p: arrivals.append(net.sim.now))
        for _ in range(3):
            a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x" * 972))
        net.run()
        assert arrivals == [pytest.approx(0.001 * (i + 1))
                            for i in range(3)]

    def test_duplex_directions_independent(self):
        net, a, b, link = two_hosts(bandwidth=8_000_000, latency=0.0)
        arrivals = []
        a.delivery_taps.append(lambda p: arrivals.append(("a", net.sim.now)))
        b.delivery_taps.append(lambda p: arrivals.append(("b", net.sim.now)))
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x" * 972))
        b.ip_send(udp_packet(b.address, a.address, 1, 2, b"x" * 972))
        net.run()
        # Both arrive at 1 ms: no shared queue between directions.
        assert sorted(arrivals) == [("a", pytest.approx(0.001)),
                                    ("b", pytest.approx(0.001))]


class TestQueueing:
    def test_drop_tail_when_queue_full(self):
        net, a, b, link = two_hosts(queue_limit=2)
        received = []
        b.delivery_taps.append(lambda p: received.append(p.uid))
        for _ in range(10):
            a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x" * 972))
        net.run()
        stats = link.tx_queue(a.interfaces[0]).stats
        assert stats.packets_dropped == 7  # 1 in flight + 2 queued kept
        assert len(received) == 3
        assert stats.drop_rate() == pytest.approx(0.7)

    def test_random_loss(self):
        net, a, b, link = two_hosts(loss_rate=0.5)
        received = []
        b.delivery_taps.append(lambda p: received.append(p.uid))
        for i in range(200):
            net.sim.at(i * 0.01, lambda: a.ip_send(
                udp_packet(a.address, b.address, 1, 2, b"y" * 100)))
        net.run()
        assert 60 < len(received) < 140  # ~100 expected


class TestSegment:
    def test_broadcast_to_all_but_sender(self):
        net = Network(seed=1)
        hosts = [net.add_host(f"h{i}") for i in range(4)]
        seg = net.segment("lan")
        for h in hosts:
            net.attach(h, seg)
        net.finalize()
        seen = {h.name: [] for h in hosts}
        for h in hosts:
            h.receive_taps.append(
                lambda p, i, name=h.name: seen[name].append(p.uid))
        hosts[0].ip_send(udp_packet(hosts[0].address, hosts[1].address,
                                    1, 2, b"z"))
        net.run()
        assert seen["h0"] == []
        assert len(seen["h1"]) == 1
        assert len(seen["h2"]) == 1  # broadcast medium: h2 sees it too
        # ...but only h1 delivers it up the stack.
        assert hosts[1].stats.delivered == 1
        assert hosts[2].stats.dropped_not_local == 1

    def test_shared_queue_couples_stations(self):
        net = Network(seed=1)
        a, b, c = (net.add_host(n) for n in "abc")
        seg = net.segment("lan", bandwidth=8_000_000, latency=0.0)
        for h in (a, b, c):
            net.attach(h, seg)
        net.finalize()
        arrivals = []
        c.delivery_taps.append(lambda p: arrivals.append(net.sim.now))
        # a and b each transmit one 1000-B packet to c at t=0: the
        # second serializes after the first (half duplex).
        a.ip_send(udp_packet(a.address, c.address, 1, 2, b"x" * 972))
        b.ip_send(udp_packet(b.address, c.address, 1, 2, b"x" * 972))
        net.run()
        assert arrivals == [pytest.approx(0.001), pytest.approx(0.002)]

    def test_segment_load_visible(self):
        net = Network(seed=1)
        a, b = net.add_host("a"), net.add_host("b")
        seg = net.segment("lan", bandwidth=1_000_000)
        net.attach(a, seg)
        net.attach(b, seg)
        net.finalize()
        for i in range(120):
            net.sim.at(i * 0.01, lambda: a.ip_send(
                udp_packet(a.address, b.address, 1, 2, b"x" * 972)))
        net.run(until=1.2)
        # 100 kB/s ~ 800 kbit/s over the 1-second window
        assert 600 < seg.load_kbps() <= 1000


class TestLoadMonitor:
    def test_rate_over_window(self):
        monitor = LoadMonitor(window=1.0, bucket=0.1)
        for i in range(10):
            monitor.record(i * 0.1, 1250)  # 12.5 kB over 1 s = 100 kbit/s
        assert monitor.rate_kbps(1.0) == pytest.approx(100, abs=15)

    def test_old_traffic_expires(self):
        monitor = LoadMonitor(window=1.0)
        monitor.record(0.0, 100_000)
        assert monitor.bytes_in_window(0.5) == 100_000
        assert monitor.bytes_in_window(5.0) == 0

    def test_totals_accumulate(self):
        monitor = LoadMonitor()
        monitor.record(0.0, 10)
        monitor.record(9.0, 20)
        assert monitor.total_bytes == 30
        assert monitor.total_packets == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadMonitor(window=0)
        with pytest.raises(ValueError):
            LoadMonitor(window=1.0, bucket=2.0)

    # -- warm-up regression -------------------------------------------------
    #
    # Before the window has filled, the rate must divide by the elapsed
    # time, not the full window: the old behaviour underreported early
    # rates (1000 B at t=0.05 read as 16 kbit/s instead of 160), which
    # biased the audio ASP's first adaptation decisions toward "plenty
    # of headroom".

    def test_warmup_divides_by_elapsed_not_window(self):
        monitor = LoadMonitor(window=1.0, bucket=0.1)
        monitor.record(0.05, 1000)
        # 8000 bits over 0.5 s elapsed = 16 kbit/s (not 8 over 1.0 s).
        assert monitor.rate_bps(0.5) == pytest.approx(16_000)
        assert monitor.rate_kbps(0.5) == 16

    def test_warmup_floored_at_one_bucket(self):
        monitor = LoadMonitor(window=1.0, bucket=0.1)
        monitor.record(0.01, 1000)
        # A lone packet at t≈0 must not extrapolate to an absurd rate:
        # the denominator bottoms out at the bucket width.
        assert monitor.rate_bps(0.02) == pytest.approx(8000 / 0.1)

    def test_full_window_uses_window_denominator(self):
        monitor = LoadMonitor(window=1.0, bucket=0.1)
        monitor.record(1.95, 1000)
        # Past warm-up the denominator is the window even though the
        # bytes arrived in its last bucket.
        assert monitor.rate_bps(2.0) == pytest.approx(8000)

    def test_warmup_rate_is_continuous_at_window_edge(self):
        monitor = LoadMonitor(window=1.0, bucket=0.1)
        monitor.record(0.5, 5000)
        just_before = monitor.rate_bps(0.999)
        at_edge = monitor.rate_bps(1.0)
        assert just_before == pytest.approx(at_edge, rel=0.01)
