"""Fault injection: link/segment failures, node crashes, partitions,
scripted timelines, and routing reconvergence over the surviving graph."""

from repro.net import Network
from repro.net.packet import udp_packet
from repro.net.routing import compute_routes
from repro.runtime import PlanPLayer

FORWARD = ("channel network(ps : int, ss : unit, p : ip*tcp*blob) is "
           "(OnRemote(network, p); (ps + 1, ss))")


def diamond(seed=7):
    """a -- r1/r2 (parallel routers) -- b."""
    net = Network(seed=seed)
    a = net.add_host("a")
    r1 = net.add_router("r1")
    r2 = net.add_router("r2")
    b = net.add_host("b")
    links = {
        "a-r1": net.link(a, r1),
        "r1-b": net.link(r1, b),
        "a-r2": net.link(a, r2),
        "r2-b": net.link(r2, b),
    }
    net.finalize()
    return net, a, r1, r2, b, links


def send_one(net, src, dst):
    """Send one UDP packet src -> dst; return 1 if delivered."""
    got = []
    tap = got.append
    dst.delivery_taps.append(tap)
    src.ip_send(udp_packet(src.address, dst.address, 1, 7, b"x"))
    net.sim.run_until_idle()
    dst.delivery_taps.remove(tap)
    return len(got)


class TestLinkFaults:
    def test_down_link_drops_traffic(self):
        net = Network(seed=1)
        a = net.add_host("a")
        b = net.add_host("b")
        link = net.link(a, b)
        net.finalize()
        assert send_one(net, a, b) == 1
        link.up = False
        a.ip_send(udp_packet(a.address, b.address, 1, 7, b"y"))
        net.sim.run_until_idle()
        assert b.stats.delivered == 1  # nothing new arrived
        assert link.tx_queue(a.interfaces[0]).stats.packets_dropped >= 1
        link.up = True
        assert send_one(net, a, b) == 1

    def test_down_link_flushes_queued_packets(self):
        net = Network(seed=1)
        a = net.add_host("a")
        b = net.add_host("b")
        # Slow link so packets queue behind the serializer.
        link = net.link(a, b, bandwidth=8_000)  # 1 KB/s
        net.finalize()
        for i in range(5):
            a.ip_send(udp_packet(a.address, b.address, 1, 7, b"z" * 100))
        link.up = False
        net.sim.run_until_idle()
        assert b.stats.delivered == 0

    def test_segment_down_and_up(self):
        net = Network(seed=2)
        a = net.add_host("a")
        b = net.add_host("b")
        seg = net.segment("lan")
        net.attach(a, seg)
        net.attach(b, seg)
        net.finalize()
        assert send_one(net, a, b) == 1
        seg.up = False
        assert send_one(net, a, b) == 0
        seg.up = True
        assert send_one(net, a, b) == 1

    def test_controller_reroutes_around_down_link(self):
        net, a, r1, r2, b, links = diamond()
        assert send_one(net, a, b) == 1
        first = r1 if r1.stats.forwarded else r2
        other = r2 if first is r1 else r1
        down = links["a-r1"] if first is r1 else links["a-r2"]
        net.faults.link_down(down)
        assert send_one(net, a, b) == 1
        assert other.stats.forwarded >= 1
        net.faults.link_up(down)
        assert send_one(net, a, b) == 1
        assert net.faults.reconvergences == 2
        assert [text for _, text in net.faults.log] == [
            f"link down {down.name}", f"link up {down.name}"]


class TestNodeCrash:
    def test_crash_stops_delivery_and_restart_restores(self):
        net, a, r1, r2, b, _links = diamond()
        net.faults.crash("r1")
        assert not r1.up
        assert send_one(net, a, b) == 1  # rerouted via r2
        assert r2.stats.forwarded >= 1
        net.faults.restart("r1")
        assert r1.up
        assert send_one(net, a, b) == 1

    def test_crash_loses_volatile_planp_state_keeps_manifest(self):
        net, a, r1, r2, b, _links = diamond()
        layer = PlanPLayer(r1)
        layer.install(FORWARD)
        sha = layer.current_sha
        assert sha
        r1.crash()
        assert layer.loaded is None and layer.engine is None
        assert layer.manifest == [sha]  # the manifest survives
        r1.restart()
        assert layer.loaded is None  # nothing re-installs it by itself

    def test_crash_flushes_nic_buffers_and_counts(self):
        net = Network(seed=3)
        a = net.add_host("a")
        b = net.add_host("b")
        net.link(a, b, bandwidth=8_000)
        net.finalize()
        for _ in range(5):
            a.ip_send(udp_packet(a.address, b.address, 1, 7, b"q" * 100))
        a.crash()
        net.sim.run_until_idle()
        assert b.stats.delivered <= 1  # at most the frame on the wire
        assert a.stats.crashes == 1
        # Traffic at a crashed node is dropped, not processed.
        b.ip_send(udp_packet(b.address, a.address, 7, 1, b"r"))
        net.sim.run_until_idle()
        assert a.stats.dropped_down >= 1
        a.restart()
        assert a.stats.restarts == 1
        assert send_one(net, b, a) == 1

    def test_crash_and_restart_hooks_run_once(self):
        net, a, r1, r2, b, _links = diamond()
        calls = []
        r1.crash_hooks.append(lambda: calls.append("crash"))
        r1.restart_hooks.append(lambda: calls.append("restart"))
        r1.crash()
        r1.crash()   # idempotent while down
        r1.restart()
        r1.restart()  # idempotent while up
        assert calls == ["crash", "restart"]


class TestPartition:
    def test_partition_cuts_cross_group_media_and_heals(self):
        net, a, r1, r2, b, _links = diamond()
        cut = net.faults.partition([a, r1, r2], [b])
        assert len(cut) == 2  # r1-b and r2-b
        assert send_one(net, a, b) == 0
        assert send_one(net, a, r1) == 1  # intra-group still works
        net.faults.heal()
        assert send_one(net, a, b) == 1

    def test_partition_accepts_node_names(self):
        net, a, r1, r2, b, _links = diamond()
        cut = net.faults.partition(["a"], ["b", "r1", "r2"])
        assert len(cut) == 2  # a-r1 and a-r2
        assert send_one(net, a, b) == 0
        net.faults.heal()
        assert send_one(net, a, b) == 1


class TestScriptedTimeline:
    def test_scripted_crash_and_restart(self):
        net, a, r1, r2, b, _links = diamond()
        net.faults.script([
            (1.0, net.faults.crash, "r1"),
            (3.0, net.faults.restart, "r1"),
        ])
        delivered = []
        b.delivery_taps.append(lambda p: delivered.append(net.now))
        net.sim.every(0.5, lambda: a.ip_send(
            udp_packet(a.address, b.address, 1, 7, b"t")), until=4.0)
        net.run(until=5.0)
        # Every tick delivers: before the crash via r1, during via r2.
        assert len(delivered) == 9
        assert r1.stats.crashes == 1 and r1.stats.restarts == 1
        assert [(t, e) for t, e in net.faults.log] == [
            (1.0, "crash r1"), (3.0, "restart r1")]


class TestRouteRecompute:
    def test_default_route_preserved_across_recompute(self):
        net = Network(seed=4)
        h = net.add_host("h")
        r = net.add_router("r")
        net.link(h, r)
        net.finalize()
        default_iface = h.interfaces[0]
        h.routes.set_default(default_iface)
        compute_routes(net.nodes)
        assert h.routes.default is default_iface

    def test_default_route_rederived_when_egress_down(self):
        net = Network(seed=4)
        h = net.add_host("h")
        r1 = net.add_router("r1")
        r2 = net.add_router("r2")
        dead = net.link(h, r1)
        net.link(h, r2)
        net.finalize()
        h.routes.set_default(h.interfaces[0])  # via the r1 link
        dead.up = False
        compute_routes(net.nodes)
        assert h.routes.default is h.interfaces[1]  # re-derived

    def test_crashed_node_excluded_from_routing(self):
        net, a, r1, r2, b, _links = diamond()
        r1.crash()
        compute_routes(net.nodes)
        out = a.routes.lookup(b.address)
        assert out is not None
        assert out.medium.name == "a--r2"
        # The crashed node's own table was left alone (it is down).
        assert r1.routes.lookup(b.address) is not None


class TestPoisonAsp:
    def test_poison_makes_every_nth_invocation_fail(self):
        import pytest
        net, a, r1, r2, b, links = diamond()
        layer = PlanPLayer(r1)
        layer.install(FORWARD)
        net.faults.poison_asp(r1, every=2)
        from repro.net.packet import tcp_packet
        for _ in range(4):
            a.ip_send(tcp_packet(a.address, b.address, 1, 80, b"x"))
        net.sim.run_until_idle()
        routed_via_r1 = layer.stats.packets_processed
        assert routed_via_r1 == 4  # the seed routes a->b via r1
        assert layer.stats.runtime_errors == routed_via_r1 // 2
        assert r1.up  # contained, never crashed
        net.faults.unpoison_asp(r1)
        before = layer.stats.runtime_errors
        for _ in range(4):
            a.ip_send(tcp_packet(a.address, b.address, 1, 80, b"x"))
        net.sim.run_until_idle()
        assert layer.stats.runtime_errors == before
        with pytest.raises(ValueError):
            net.faults.poison_asp(r2)  # nothing installed there

    def test_poison_is_logged_as_fault(self):
        net, a, r1, r2, b, links = diamond()
        layer = PlanPLayer(r1)
        layer.install(FORWARD)
        net.faults.poison_asp(r1)
        assert any("poison asp r1" in text for _, text in net.faults.log)
