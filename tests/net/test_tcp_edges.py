"""TCP edge-case tests beyond the happy paths."""

import pytest

from repro.net import Network
from repro.net.tcp import TcpError, TcpState


def pair(loss_rate=0.0):
    net = Network(seed=77)
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, loss_rate=loss_rate)
    net.finalize()
    return net, a, b


class TestHandshakeEdges:
    def test_duplicate_syn_gets_one_connection(self):
        """A retransmitted SYN (lost SYN-ACK) must not fork state."""
        net, a, b = pair(loss_rate=0.4)
        accepted = []
        net.tcp(b).listen(80, lambda c: accepted.append(c))
        conn = net.tcp(a).connect(b.address, 80)
        done = []
        conn.on_connected = lambda c: done.append(c)
        net.run(until=30.0)
        if done:  # if the handshake survived the loss at all
            assert len(accepted) == 1

    def test_rst_to_half_open_listener_side(self):
        net, a, b = pair()
        accepted = []
        net.tcp(b).listen(80, lambda c: accepted.append(c))
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_connected = lambda c: c.abort()
        net.run(until=5.0)
        assert accepted[0].state is TcpState.CLOSED
        assert net.tcp(b).open_connections == 0

    def test_listener_close_stops_accepting(self):
        net, a, b = pair()
        listener = net.tcp(b).listen(80, lambda c: None)
        listener.close()
        failures = []
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_fail = lambda c: failures.append(c)
        net.run(until=5.0)
        assert failures

    def test_connect_duplicate_tuple_rejected(self):
        net, a, b = pair()
        net.tcp(b).listen(80, lambda c: None)
        net.tcp(a).connect(b.address, 80, local_port=5000)
        with pytest.raises(TcpError):
            net.tcp(a).connect(b.address, 80, local_port=5000)


class TestDataEdges:
    def test_empty_send_is_harmless(self):
        net, a, b = pair()
        received = bytearray()

        def on_accept(conn):
            conn.on_data = lambda c, d: received.extend(d)

        net.tcp(b).listen(80, on_accept)
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_connected = lambda c: (c.send(b""), c.send(b"after"))
        net.run(until=5.0)
        assert bytes(received) == b"after"

    def test_exactly_one_mss(self):
        from repro.net.tcp import MSS

        net, a, b = pair()
        received = bytearray()

        def on_accept(conn):
            conn.on_data = lambda c, d: received.extend(d)

        net.tcp(b).listen(80, on_accept)
        conn = net.tcp(a).connect(b.address, 80)
        payload = b"m" * MSS
        conn.on_connected = lambda c: c.send(payload)
        net.run(until=5.0)
        assert bytes(received) == payload

    def test_window_larger_than_transfer(self):
        net, a, b = pair()
        received = bytearray()

        def on_accept(conn):
            conn.on_data = lambda c, d: received.extend(d)

        net.tcp(b).listen(80, on_accept)
        conn = net.tcp(a).connect(b.address, 80)
        conn.window_bytes = 10**9
        conn.on_connected = lambda c: c.send(b"w" * 100_000)
        net.run(until=30.0)
        assert len(received) == 100_000

    def test_interleaved_sends_keep_order(self):
        net, a, b = pair()
        received = bytearray()

        def on_accept(conn):
            conn.on_data = lambda c, d: received.extend(d)

        net.tcp(b).listen(80, on_accept)
        conn = net.tcp(a).connect(b.address, 80)

        def start(c):
            for i in range(10):
                c.send(bytes([i]) * 100)

        conn.on_connected = start
        net.run(until=10.0)
        expected = b"".join(bytes([i]) * 100 for i in range(10))
        assert bytes(received) == expected


class TestCloseEdges:
    def test_double_close_is_idempotent(self):
        net, a, b = pair()
        net.tcp(b).listen(80, lambda c: None)
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_connected = lambda c: (c.close(), c.close())
        net.run(until=5.0)

    def test_send_queued_before_close_still_delivered(self):
        net, a, b = pair()
        received = bytearray()

        def on_accept(conn):
            conn.on_data = lambda c, d: received.extend(d)

        net.tcp(b).listen(80, on_accept)
        conn = net.tcp(a).connect(b.address, 80)
        conn.on_connected = lambda c: (c.send(b"x" * 50_000), c.close())
        net.run(until=30.0)
        assert len(received) == 50_000

    def test_simultaneous_close(self):
        net, a, b = pair()
        server_conns = []

        def on_accept(conn):
            server_conns.append(conn)
            conn.on_data = lambda c, d: None

        net.tcp(b).listen(80, on_accept)
        conn = net.tcp(a).connect(b.address, 80)

        def both_close(c):
            c.close()
            server_conns[0].close()

        conn.on_connected = both_close
        net.run(until=10.0)
        assert net.tcp(a).open_connections == 0
        assert net.tcp(b).open_connections == 0

    def test_abort_without_peer(self):
        net, a, b = pair()
        conn = net.tcp(a).connect(b.address, 80)
        conn.abort()
        net.run(until=2.0)
        assert conn.state is TcpState.CLOSED
        assert net.tcp(a).open_connections == 0
