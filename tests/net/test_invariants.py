"""Simulator-wide conservation and invariant property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Network
from repro.net.packet import udp_packet


def line_net(n_routers, seed):
    net = Network(seed=seed)
    a = net.add_host("a")
    previous = a
    routers = []
    for i in range(n_routers):
        router = net.add_router(f"r{i}")
        net.link(previous, router)
        previous = router
        routers.append(router)
    b = net.add_host("b")
    net.link(previous, b)
    net.finalize()
    return net, a, routers, b


class TestConservation:
    @given(st.integers(0, 3), st.integers(1, 40), st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_udp_datagrams_conserved_on_lossless_path(self, n_routers,
                                                      n_packets, seed):
        """On a lossless line, every datagram sent is delivered exactly
        once and forwarded exactly once per router."""
        net, a, routers, b = line_net(n_routers, seed)
        delivered = []
        b.delivery_taps.append(lambda p: delivered.append(p.uid))
        for i in range(n_packets):
            net.sim.at(i * 0.001, lambda: a.ip_send(
                udp_packet(a.address, b.address, 1, 2, b"x" * 50)))
        net.run()
        assert len(delivered) == n_packets
        assert len(set(delivered)) == n_packets  # no duplicates
        for router in routers:
            assert router.stats.forwarded == n_packets

    @given(st.integers(1, 30), st.integers(0, 99))
    @settings(max_examples=20, deadline=None)
    def test_loss_accounting_balances(self, n_packets, seed):
        """sent == delivered + dropped, with loss injected."""
        net = Network(seed=seed)
        a = net.add_host("a")
        b = net.add_host("b")
        link = net.link(a, b, loss_rate=0.3, queue_limit=4)
        net.finalize()
        delivered = []
        b.delivery_taps.append(lambda p: delivered.append(p.uid))
        for i in range(n_packets):
            net.sim.at(i * 0.01, lambda: a.ip_send(
                udp_packet(a.address, b.address, 1, 2, b"y" * 100)))
        net.run()
        stats = link.tx_queue(a.interfaces[0]).stats
        # offered = transmitted + queue-dropped; arrived = sent - lost
        assert stats.packets_sent + stats.packets_dropped == n_packets
        assert len(delivered) == stats.packets_sent - stats.packets_lost

    def test_ttl_bounds_any_forwarding(self):
        """No packet can be forwarded more than its initial TTL times,
        even on a deliberately mis-routed topology (a 3-router ring; a
        2-node ping-pong is already prevented by the arrival-interface
        rule)."""
        net = Network(seed=3)
        r1 = net.add_router("r1")
        r2 = net.add_router("r2")
        r3 = net.add_router("r3")
        l12 = net.link(r1, r2)
        l23 = net.link(r2, r3)
        l31 = net.link(r3, r1)
        net.finalize()
        # Route a ghost address clockwise around the ring, forever.
        from repro.net.addresses import HostAddr

        def iface_on(node, link):
            return next(i for i in node.interfaces if i.medium is link)

        ghost = HostAddr.parse("99.99.99.99")
        r1.routes.add_route(ghost, iface_on(r1, l12))
        r2.routes.add_route(ghost, iface_on(r2, l23))
        r3.routes.add_route(ghost, iface_on(r3, l31))
        packet = udp_packet(r1.address, ghost, 1, 2, b"loop")
        r1.ip_send(packet)
        net.sim.run_until_idle(max_events=100_000)
        hops = (r1.stats.forwarded + r2.stats.forwarded
                + r3.stats.forwarded)
        assert hops > 10  # it really did loop...
        assert hops <= packet.ip.ttl  # ...but the TTL bounded it
        drops = (r1.stats.dropped_ttl + r2.stats.dropped_ttl
                 + r3.stats.dropped_ttl)
        assert drops == 1


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        def run(seed):
            from repro.apps.audio import run_audio_experiment

            result = run_audio_experiment(duration=8.0, seed=seed,
                                          constant_load_bps=1_600_000)
            return (result.frames_received, result.silent_periods,
                    [(s.time, s.kbps, s.quality)
                     for s in result.bandwidth_series])

        assert run(5) == run(5)

    def test_different_seeds_differ_under_loss(self):
        net1, a1, _r, b1 = line_net(0, 1)
        # rebuild with loss and different seeds
        def delivered_count(seed):
            net = Network(seed=seed)
            a = net.add_host("a")
            b = net.add_host("b")
            net.link(a, b, loss_rate=0.5)
            net.finalize()
            got = []
            b.delivery_taps.append(lambda p: got.append(p))
            for i in range(40):
                net.sim.at(i * 0.01, lambda: a.ip_send(
                    udp_packet(a.address, b.address, 1, 2, b"z")))
            net.run()
            return len(got)

        counts = {delivered_count(s) for s in range(6)}
        assert len(counts) > 1
