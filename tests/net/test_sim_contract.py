"""The formalized scheduling contract of :mod:`repro.net.sim`:
explicit-key posting, the unified run bounds, snapshot/restore, and
the keyword-only constructor shims."""

import pytest

from repro.net.sim import BEFORE_ANY_LP, Simulator
from repro.net.topology import Network


class TestPost:
    def test_posted_events_sort_by_key(self):
        sim = Simulator(seed=0)
        order = []
        sim.post(1.0, lambda: order.append("b"), lp=2, lseq=0)
        sim.post(1.0, lambda: order.append("a"), lp=1, lseq=5)
        sim.post(1.0, lambda: order.append("c"), lp=2, lseq=1)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_post_interleaves_with_scheduled_events(self):
        # a posted key lands exactly where a local schedule() with the
        # same context would have put it — the boundary guarantee
        sim = Simulator(seed=0)
        ctx = sim.context("txq")
        order = []
        sim.at(1.0, lambda: order.append("local"), context=ctx)
        # the key ctx would draw next, but posted from "outside"
        sim.post(1.0, lambda: order.append("posted"),
                 lp=ctx.lp, lseq=ctx.next_lseq())
        sim.at(1.0, lambda: order.append("later"), context=ctx)
        sim.run()
        assert order == ["local", "posted", "later"]

    def test_post_rejects_past_times(self):
        sim = Simulator(seed=0)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="past"):
            sim.post(0.5, lambda: None, lp=0, lseq=0)


class TestRunBounds:
    def test_until_is_inclusive_and_advances_now(self):
        sim = Simulator(seed=0)
        ran = []
        sim.at(1.0, lambda: ran.append(1.0))
        sim.at(2.0, lambda: ran.append(2.0))
        assert sim.run(until=1.0) == 1
        assert ran == [1.0]
        assert sim.now == 1.0
        assert sim.run(until=5.0) == 1
        assert sim.now == 5.0  # advances past the drained queue

    def test_until_key_is_exclusive(self):
        sim = Simulator(seed=0)
        ran = []
        sim.at(1.0, lambda: ran.append("at-bound"))
        sim.at(0.5, lambda: ran.append("before"))
        assert sim.run(until_key=(1.0, BEFORE_ANY_LP, 0)) == 1
        assert ran == ["before"]
        assert sim.now == 1.0
        sim.run()
        assert ran == ["before", "at-bound"]

    def test_max_events_raises_on_runaway(self):
        sim = Simulator(seed=0)

        def storm():
            sim.schedule(0.001, storm)

        sim.schedule(0.001, storm)
        with pytest.raises(RuntimeError, match="did not converge"):
            sim.run(max_events=100)

    def test_network_run_shares_the_contract(self):
        net = Network(seed=0)
        net.finalize()

        def storm():
            net.sim.schedule(0.001, storm)

        net.sim.schedule(0.001, storm)
        with pytest.raises(RuntimeError, match="did not converge"):
            net.run(max_events=50)

    def test_snapshot_restore_roundtrip(self):
        sim = Simulator(seed=0)
        sim.at(1.0, lambda: None)
        sim.at(2.0, lambda: None)
        sim.run(until=1.0)
        snap = sim.snapshot()
        assert snap == {"now": 1.0, "events_processed": 1,
                        "pending_events": 1}
        sim.run()
        sim.restore(snap)
        assert sim.now == 1.0
        assert sim.events_processed == 1


class TestKeywordOnlyShims:
    def test_simulator_positional_seed_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="keyword"):
            sim = Simulator(7)
        assert sim.seed == 7
        assert Simulator(seed=7).seed == 7  # no warning path

    def test_network_positional_seed_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="keyword"):
            net = Network(7)
        assert net.seed == 7
        assert Network(seed=7).seed == 7


class TestContextAttribution:
    def test_context_names_fold_in_the_lp(self):
        sim = Simulator(seed=0)
        ctx1 = sim.context("node:a")
        ctx2 = sim.context("node:b")
        assert ctx1.lp != ctx2.lp
        assert ctx1.name == f"node:a#{ctx1.lp}"

    def test_entropy_is_seed_and_name_stable(self):
        draws1 = Simulator(seed=9).context("node:a").entropy.random()
        draws2 = Simulator(seed=9).context("node:a").entropy.random()
        other = Simulator(seed=9).context("node:b").entropy.random()
        assert draws1 == draws2
        assert draws1 != other

    def test_ambient_context_inherited_by_nested_schedules(self):
        sim = Simulator(seed=0)
        ctx = sim.context("worker")
        seen = []

        def outer():
            sim.schedule(0.1, lambda: seen.append(
                sim.current_context.name))

        sim.schedule(0.0, outer, context=ctx)
        sim.run()
        assert seen == [ctx.name]
