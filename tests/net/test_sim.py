"""Discrete-event engine tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.sim import PeriodicTask, SerialResource, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_run_until_stops_and_pins_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.now == 5.0
        sim.run(until=20.0)
        assert log == [1, 10]

    def test_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: sim.at(3.0, lambda: seen.append(
            sim.now)))
        sim.run()
        assert seen == [3.0]

    def test_cancel(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        sim.run()
        assert log == []
        assert handle.cancelled

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.schedule(1.0, lambda: log.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert log == ["first", "second"]
        assert sim.now == 2.0

    def test_rng_seeded(self):
        a = Simulator(seed=5).rng.random()
        b = Simulator(seed=5).rng.random()
        assert a == b

    def test_run_until_idle_guards_runaway(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError, match="converge"):
            sim.run_until_idle(max_events=100)


class TestLazyDeletion:
    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None)
                   for i in range(10)]
        assert sim.pending_events == 10
        for handle in handles[:4]:
            handle.cancel()
        assert sim.pending_events == 6
        sim.run(until=6.5)  # runs events at t=5..6 (0-3 cancelled)
        assert sim.pending_events == 4

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 0

    def test_cancel_after_run_is_noop(self):
        sim = Simulator()
        log = []
        handle = sim.schedule(1.0, lambda: log.append("x"))
        sim.run()
        handle.cancel()
        assert log == ["x"]
        assert not handle.cancelled
        assert sim.pending_events == 0

    def test_compaction_sweeps_majority_cancelled_queue(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None)
                   for i in range(100)]
        for handle in handles[:60]:
            handle.cancel()
        # The sweep triggered once cancelled entries outnumbered live
        # ones, physically shrinking the heap (it fired at the 51st
        # cancel, so at most the post-sweep stragglers remain flagged).
        assert sim.pending_events == 40
        assert len(sim._queue) < 60
        sim.run()
        assert sim.events_processed == 40
        assert sim.pending_events == 0

    def test_small_queues_skip_compaction(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None)
                   for i in range(10)]
        for handle in handles[:9]:
            handle.cancel()
        # Below the compaction floor the garbage just sits in the heap…
        assert len(sim._queue) == 10
        assert sim.pending_events == 1
        # …and is skipped, not executed, when popped.
        sim.run()
        assert sim.events_processed == 1

    def test_cancelled_events_never_fire_after_compaction(self):
        sim = Simulator()
        log = []
        handles = [sim.schedule(float(i + 1), lambda i=i: log.append(i))
                   for i in range(80)]
        for handle in handles[::2]:
            handle.cancel()
        sim.run()
        assert log == list(range(1, 80, 2))


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert ticks == [0.0, 1.0, 2.0, 3.0]

    def test_start_offset(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), start=2.0)
        sim.run(until=4.5)
        assert ticks == [2.0, 3.0, 4.0]

    def test_until_bound(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), until=2.0)
        sim.run(until=10.0)
        assert ticks == [0.0, 1.0, 2.0]

    def test_stop(self):
        sim = Simulator()
        ticks = []
        task = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(1.5, task.stop)
        sim.run(until=5.0)
        assert ticks == [0.0, 1.0]

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTask(Simulator(), 0.0, lambda: None)


class TestSerialResource:
    def test_zero_cost_is_synchronous(self):
        sim = Simulator()
        cpu = SerialResource(sim, per_item_s=0.0)
        log = []
        cpu.submit(lambda: log.append(sim.now))
        assert log == [0.0]

    def test_items_serialize(self):
        sim = Simulator()
        cpu = SerialResource(sim, per_item_s=1.0)
        done = []
        cpu.submit(lambda: done.append(sim.now))
        cpu.submit(lambda: done.append(sim.now))
        cpu.submit(lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 2.0, 3.0]

    def test_backlog_reported(self):
        sim = Simulator()
        cpu = SerialResource(sim, per_item_s=2.0)
        cpu.submit(lambda: None)
        cpu.submit(lambda: None)
        assert cpu.backlog_s == pytest.approx(4.0)

    def test_idle_gap_resets(self):
        sim = Simulator()
        cpu = SerialResource(sim, per_item_s=1.0)
        done = []
        cpu.submit(lambda: done.append(sim.now))
        sim.schedule(10.0, lambda: cpu.submit(
            lambda: done.append(sim.now)))
        sim.run()
        assert done == [1.0, 11.0]


# -- scheduler bookkeeping invariants -----------------------------------------
#
# The lazy-deletion scheme keeps three facts in sync: the O(1)
# ``pending_events`` counter, the cancelled-entry counter that triggers
# compaction, and the heap itself.  These properties drive random
# interleavings of schedule / cancel / run (including cancelling
# already-run and already-cancelled events, which must be no-ops) and
# check the counters against a brute-force walk of the heap after every
# operation.

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.integers(0, 30)),
        st.tuples(st.just("cancel"), st.integers(0, 10_000)),
        st.tuples(st.just("run"), st.integers(0, 40)),
    ),
    min_size=1, max_size=80)


def _check_counters(sim):
    live = sum(1 for e in sim._queue if not e.cancelled)
    cancelled = sum(1 for e in sim._queue if e.cancelled)
    assert sim.pending_events == live
    assert sim._cancelled == cancelled
    assert sim._live == live


class TestSchedulerInvariants:
    @settings(max_examples=200, deadline=None)
    @given(ops=_ops)
    def test_counters_match_heap_under_interleaving(self, ops):
        sim = Simulator()
        handles = []
        for op, arg in ops:
            if op == "schedule":
                handles.append(sim.schedule(arg / 10.0, lambda: None))
            elif op == "cancel" and handles:
                # May hit pending, already-cancelled, or already-run
                # events — the latter two must be no-ops.
                handles[arg % len(handles)].cancel()
            elif op == "run":
                sim.run(until=sim.now + arg / 10.0)
            _check_counters(sim)
        sim.run()
        _check_counters(sim)
        assert sim.pending_events == 0

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(64, 120), seed=st.integers(0, 2**16))
    def test_compaction_preserves_order_and_counts(self, n, seed):
        sim = Simulator()
        ran = []
        handles = [sim.schedule(i / 10.0, lambda i=i: ran.append(i))
                   for i in range(n)]
        rng = random.Random(seed)
        victims = rng.sample(range(n), int(n * 0.8))
        for i in victims:
            handles[i].cancel()  # past n/2 cancels this compacts
            _check_counters(sim)
        sim.run()
        survivors = sorted(set(range(n)) - set(victims))
        assert ran == survivors  # order survives the re-heapify
        _check_counters(sim)

    def test_cancel_after_run_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        before = sim.stats()
        handle.cancel()
        handle.cancel()
        assert sim.stats() == before
        assert not handle.cancelled  # it ran; it was never cancelled

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim._cancelled == 1
        assert sim.pending_events == 0

    def test_stats_shape(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None).cancel()
        stats = sim.stats()
        assert stats == {"now": 0.0, "events_processed": 0,
                         "pending_events": 1, "cancelled_pending": 1,
                         "heap_size": 2}
