"""Packet tracer tests."""

from repro.net import Network
from repro.net.packet import udp_packet
from repro.net.trace import EventKind, PacketTracer


def traced_line():
    net = Network(seed=5)
    a = net.add_host("a")
    r = net.add_router("r")
    b = net.add_host("b")
    net.link(a, r)
    net.link(r, b)
    net.finalize()
    tracer = PacketTracer(net)
    tracer.attach_all()
    return net, a, r, b, tracer


class TestTracing:
    def test_records_path_across_nodes(self):
        net, a, r, b, tracer = traced_line()
        packet = udp_packet(a.address, b.address, 1, 2, b"x")
        a.ip_send(packet)
        net.run()
        assert tracer.packet_path(packet.uid) == ["r", "b"]

    def test_deliver_event_recorded(self):
        net, a, r, b, tracer = traced_line()
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        net.run()
        ups = tracer.filter(node="b")
        assert any(e.kind is EventKind.DELIVER for e in ups)

    def test_filter_by_proto(self):
        net, a, r, b, tracer = traced_line()
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        conn = net.tcp(a)
        net.tcp(b).listen(80, lambda c: None)
        conn.connect(b.address, 80)
        net.run(until=2.0)
        assert tracer.filter(proto="udp")
        assert tracer.filter(proto="tcp")
        assert all(e.proto == "tcp" for e in tracer.filter(proto="tcp"))

    def test_render_is_readable(self):
        net, a, r, b, tracer = traced_line()
        a.ip_send(udp_packet(a.address, b.address, 7, 9, b"x"))
        net.run()
        text = tracer.render()
        assert "7->9" in text
        assert "-> " in text and "ms" in text

    def test_render_limit(self):
        net, a, r, b, tracer = traced_line()
        for _ in range(5):
            a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        net.run()
        assert len(tracer.render(limit=3).splitlines()) == 3

    def test_truncation_guard(self):
        net, a, r, b, tracer = traced_line()
        tracer.max_events = 2
        for _ in range(5):
            a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        net.run()
        assert tracer.truncated
        assert "truncated" in tracer.render()

    def test_tcp_flags_described(self):
        net, a, r, b, tracer = traced_line()
        net.tcp(b).listen(80, lambda c: None)
        net.tcp(a).connect(b.address, 80)
        net.run(until=1.0)
        syns = tracer.filter(proto="tcp",
                             predicate=lambda e: "[S]" in e.info)
        assert syns

    def test_double_attach_is_idempotent(self):
        net, a, r, b, tracer = traced_line()
        tracer.attach(r)  # second time
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        net.run()
        rx_at_r = tracer.filter(node="r",
                                predicate=lambda e:
                                e.kind is EventKind.RECEIVE)
        assert len(rx_at_r) == 1


class TestSendAndDropTracing:
    def test_send_events_recorded_along_path(self):
        net, a, r, b, tracer = traced_line()
        packet = udp_packet(a.address, b.address, 1, 2, b"x")
        a.ip_send(packet)
        net.run()
        tx_nodes = [e.node for e in tracer.filter(uid=packet.uid)
                    if e.kind is EventKind.SEND]
        assert tx_nodes == ["a", "r"]  # once per hop, stamped by sender

    def test_queue_drop_appears_in_rendered_trace(self):
        net = Network(seed=5)
        a = net.add_host("a")
        b = net.add_host("b")
        net.link(a, b, bandwidth=64_000, queue_limit=1)
        net.finalize()
        tracer = PacketTracer(net)
        tracer.attach_all()
        dropped = []
        for _ in range(6):
            packet = udp_packet(a.address, b.address, 1, 2, b"x" * 500)
            a.ip_send(packet)
            dropped.append(packet.uid)
        net.run()
        drops = [e for e in tracer.events if e.kind is EventKind.DROP]
        assert drops and all(e.info.endswith("reason=queue")
                             for e in drops)
        assert {e.uid for e in drops} <= set(dropped)
        text = tracer.render()
        assert "drop" in text and "reason=queue" in text

    def test_downed_link_drop_traced_with_reason(self):
        net, a, r, b, tracer = traced_line()
        # Down the medium directly (the fault controller would also
        # recompute routes, turning this into a no-route node drop).
        net.media[0].up = False  # the a--r link
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        net.run()
        (drop,) = [e for e in tracer.events
                   if e.kind is EventKind.DROP]
        assert drop.node == "a"
        assert drop.info.endswith("reason=down")

    def test_no_route_after_fault_recompute_traced(self):
        net, a, r, b, tracer = traced_line()
        net.faults.link_down(net.media[0])  # recomputes routes too
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        net.run()
        (drop,) = [e for e in tracer.events
                   if e.kind is EventKind.DROP]
        assert drop.node == "a"
        assert drop.info.endswith("reason=no-route")

    def test_traced_packets_mirrored_into_event_log(self):
        net, a, r, b, tracer = traced_line()
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        net.run()
        kinds = {e.kind for e in net.obs.events.events}
        assert {"tx", "rx", "up"} <= kinds
        # Drops are not mirrored by the tracer (the network's own drop
        # taps log them); with no drops here the log has no drop events.
        assert "drop" not in kinds

    def test_mirror_opt_out(self):
        net = Network(seed=5)
        a = net.add_host("a")
        b = net.add_host("b")
        net.link(a, b)
        net.finalize()
        tracer = PacketTracer(net, mirror=False)
        tracer.attach_all()
        a.ip_send(udp_packet(a.address, b.address, 1, 2, b"x"))
        net.run()
        assert tracer.events  # traced...
        assert len(net.obs.events) == 0  # ...but not logged
