"""Overload-control mechanism tests (DESIGN §14).

Covers the three pure mechanisms in :mod:`repro.net.overload` —
Backoff, EwmaLoadEstimator, AdmissionController — plus property tests
for the hardened :class:`~repro.net.monitor.LoadMonitor` (out-of-order
records must keep the window sum exact and the bucket deque sorted).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.monitor import LoadMonitor
from repro.net.overload import AdmissionController, Backoff, EwmaLoadEstimator


class TestBackoff:
    def test_unjittered_is_deterministic(self):
        b = Backoff(initial=0.1, ceiling=1.0, entropy=None)
        assert b.delay() == pytest.approx(0.1)
        assert b.delay() == pytest.approx(0.1)  # delay() draws nothing

    def test_bump_doubles_toward_ceiling(self):
        b = Backoff(initial=0.1, ceiling=0.5, entropy=None)
        delays = []
        for _ in range(5):
            delays.append(b.delay())
            b.bump()
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])
        assert b.attempts == 5

    def test_reset_restores_initial(self):
        b = Backoff(initial=0.1, ceiling=2.0, entropy=None)
        b.bump()
        b.bump()
        assert b.delay() == pytest.approx(0.4)
        b.reset()
        assert b.delay() == pytest.approx(0.1)
        assert b.attempts == 0

    def test_jitter_stays_within_band(self):
        b = Backoff(initial=0.1, ceiling=1.0, jitter=0.5,
                    entropy=random.Random(7))
        for _ in range(200):
            d = b.delay()
            assert 0.05 <= d <= 0.15

    def test_jitter_matches_sim_formula(self):
        # One entropy draw per delay(), same formula as
        # Simulator.jittered — the contract netdeploy relies on when it
        # swaps its ad-hoc timer math for the shared Backoff.
        b = Backoff(initial=0.2, ceiling=2.0, jitter=0.5,
                    entropy=random.Random(42))
        ref = random.Random(42)
        for _ in range(20):
            expected = 0.2 * (1.0 + 0.5 * (2.0 * ref.random() - 1.0))
            assert b.delay() == pytest.approx(expected)

    def test_same_entropy_same_schedule(self):
        a = Backoff(initial=0.1, ceiling=1.0, entropy=random.Random(3))
        b = Backoff(initial=0.1, ceiling=1.0, entropy=random.Random(3))
        seq_a, seq_b = [], []
        for _ in range(10):
            seq_a.append(a.delay())
            a.bump()
            seq_b.append(b.delay())
            b.bump()
        assert seq_a == seq_b

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            Backoff(initial=0.0, ceiling=1.0)
        with pytest.raises(ValueError):
            Backoff(initial=1.0, ceiling=0.5)
        with pytest.raises(ValueError):
            Backoff(initial=0.1, ceiling=1.0, multiplier=0.5)


class TestAdmissionController:
    def test_burst_then_refusal(self):
        ac = AdmissionController(rate=10.0, burst=3.0)
        admitted = [ac.admit(0.0) for _ in range(5)]
        assert admitted == [True, True, True, False, False]
        assert ac.admitted == 3
        assert ac.refused == 2

    def test_refills_at_rate(self):
        ac = AdmissionController(rate=10.0, burst=2.0)
        assert ac.admit(0.0)
        assert ac.admit(0.0)
        assert not ac.admit(0.0)
        # 0.1 s at 10 tokens/s refills exactly one token
        assert ac.admit(0.1)
        assert not ac.admit(0.1)

    def test_aimd_decrease_and_floor(self):
        ac = AdmissionController(rate=100.0, floor=10.0, decrease=0.5)
        ac.on_overload()
        assert ac.rate == pytest.approx(50.0)
        for _ in range(10):
            ac.on_overload()
        assert ac.rate == pytest.approx(10.0)  # floored

    def test_aimd_increase_and_ceiling(self):
        ac = AdmissionController(rate=99.0, ceiling=100.0, increase=2.0)
        ac.on_healthy()
        assert ac.rate == pytest.approx(100.0)  # ceilinged
        ac.on_healthy()
        assert ac.rate == pytest.approx(100.0)

    def test_rate_clamped_at_construction(self):
        ac = AdmissionController(rate=1e9, floor=1.0, ceiling=500.0)
        assert ac.rate == pytest.approx(500.0)

    def test_stats_dict(self):
        ac = AdmissionController(rate=5.0, burst=1.0)
        ac.admit(0.0)
        ac.admit(0.0)
        assert ac.stats_dict() == {"rate": 5.0, "admitted": 1,
                                   "refused": 1}

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            AdmissionController(floor=0.0)
        with pytest.raises(ValueError):
            AdmissionController(floor=10.0, ceiling=5.0)
        with pytest.raises(ValueError):
            AdmissionController(decrease=1.5)


class TestEwmaLoadEstimator:
    def fill(self, est, start, seconds, bytes_per_bucket):
        t = start
        monitor = est.monitor
        steps = int(seconds / monitor.bucket)
        for _ in range(steps):
            est.record(t, bytes_per_bucket)
            t += monitor.bucket
        return t

    def test_utilization_tracks_rate(self):
        est = EwmaLoadEstimator(80_000.0)  # 10 kB/s capacity
        # 500 B per 0.1 s bucket = 40 kbit/s = 50% utilization
        t = self.fill(est, 0.0, 3.0, 500)
        assert est.utilization(t) == pytest.approx(0.5, rel=0.1)

    def test_hysteresis_trip_and_clear(self):
        est = EwmaLoadEstimator(80_000.0, trip=0.9, clear=0.7)
        t = self.fill(est, 0.0, 3.0, 1000)  # 100% utilization
        assert est.overloaded(t)
        # falling to 80% stays tripped (above clear)
        t = self.fill(est, t, 3.0, 800)
        assert est.overloaded(t)
        # falling to 50% clears
        t = self.fill(est, t, 3.0, 500)
        assert not est.overloaded(t)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            EwmaLoadEstimator(0.0)
        with pytest.raises(ValueError):
            EwmaLoadEstimator(1000.0, trip=0.5, clear=0.8)


class TestLoadMonitorOutOfOrder:
    def test_late_record_merges_into_window(self):
        m = LoadMonitor(window=1.0, bucket=0.1)
        m.record(0.50, 100)
        m.record(0.90, 100)
        m.record(0.55, 100)  # late: lands in the 0.5 slot
        assert m.bytes_in_window(0.9) == 300
        assert m.total_bytes == 300

    def test_late_record_creates_missing_slot_sorted(self):
        m = LoadMonitor(window=2.0, bucket=0.1)
        m.record(0.10, 10)
        m.record(0.90, 30)
        m.record(0.50, 20)  # late, between existing slots
        slots = [s for s, _n in m._buckets]
        assert slots == sorted(slots)
        assert m.bytes_in_window(0.9) == 60

    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=10.0,
                                        allow_nan=False),
                              st.integers(1, 5000)),
                    min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_window_sum_exact_under_reordering(self, events):
        m = LoadMonitor(window=20.0, bucket=0.1)
        for now, nbytes in events:
            m.record(now, nbytes)
        slots = [s for s, _n in m._buckets]
        assert slots == sorted(slots)
        assert len(slots) == len(set(slots))  # one bucket per slot
        latest = max(now for now, _ in events)
        # window (20 s) covers every event in [0, 10]: exact sum
        assert m.bytes_in_window(latest) == sum(n for _, n in events)
        assert m.total_bytes == sum(n for _, n in events)
        assert m.total_packets == len(events)

    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=5.0,
                                        allow_nan=False),
                              st.integers(1, 5000)),
                    min_size=1, max_size=60),
           st.floats(min_value=5.0, max_value=20.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_ewma_rate_finite_and_nonnegative(self, events, query_at):
        m = LoadMonitor(window=1.0, bucket=0.1)
        for now, nbytes in events:
            m.record(now, nbytes)
        rate = m.ewma_rate(query_at)
        assert rate >= 0.0
        # bounded by the max single-bucket burst rate
        assert rate <= sum(n for _, n in events) * 8 / m.bucket
        # querying must not mutate state
        assert m.ewma_rate(query_at) == rate

    def test_ewma_converges_to_steady_rate(self):
        m = LoadMonitor(window=1.0, bucket=0.1, ewma_alpha=0.3)
        t = 0.0
        for _ in range(100):
            m.record(t, 1000)  # 1000 B / 0.1 s = 80 kbit/s
            t += 0.1
        assert m.ewma_rate(t) == pytest.approx(80_000.0, rel=0.05)

    def test_ewma_decays_over_silence(self):
        m = LoadMonitor(window=1.0, bucket=0.1)
        t = 0.0
        for _ in range(30):
            m.record(t, 1000)
            t += 0.1
        busy = m.ewma_rate(t)
        assert m.ewma_rate(t + 5.0) < busy * 0.01
