"""Address and packet model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import (ANY_ADDR, BROADCAST_ADDR,
                                 AddressAllocator, HostAddr, addr)
from repro.net.packet import (DEFAULT_TTL, IpHeader, Packet, TcpHeader,
                              UdpHeader, tcp_packet, udp_packet)


class TestHostAddr:
    def test_parse_and_str_roundtrip(self):
        assert str(HostAddr.parse("131.254.60.81")) == "131.254.60.81"

    @given(st.integers(0, 0xFFFFFFFF))
    def test_parse_str_roundtrip_property(self, value):
        a = HostAddr(value)
        assert HostAddr.parse(str(a)) == a

    def test_parse_rejects_bad_input(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                HostAddr.parse(bad)

    def test_multicast_detection(self):
        assert HostAddr.parse("224.0.0.1").is_multicast
        assert HostAddr.parse("239.255.255.255").is_multicast
        assert not HostAddr.parse("223.255.255.255").is_multicast
        assert not HostAddr.parse("10.0.0.1").is_multicast

    def test_broadcast(self):
        assert BROADCAST_ADDR.is_broadcast
        assert not ANY_ADDR.is_broadcast

    def test_ordering_and_hash(self):
        a, b = HostAddr(1), HostAddr(2)
        assert a < b
        assert len({HostAddr(1), HostAddr(1)}) == 1

    def test_addr_helper(self):
        assert addr("1.2.3.4") == addr(0x01020304)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            HostAddr(-1)


class TestAddressAllocator:
    def test_unique_addresses(self):
        alloc = AddressAllocator()
        net1 = alloc.new_subnet()
        net2 = alloc.new_subnet()
        addrs = [alloc.new_host(net1), alloc.new_host(net1),
                 alloc.new_host(net2)]
        assert len(set(addrs)) == 3

    def test_readable_layout(self):
        alloc = AddressAllocator("10.0.0.0")
        net = alloc.new_subnet()
        assert str(alloc.new_host(net)) == "10.0.1.1"
        assert str(alloc.new_host(net)) == "10.0.1.2"

    def test_unknown_subnet_rejected(self):
        with pytest.raises(ValueError):
            AddressAllocator().new_host(42)


class TestHeaders:
    def test_functional_updates(self):
        ip = IpHeader(src=addr("1.1.1.1"), dst=addr("2.2.2.2"))
        assert str(ip.with_dst(addr("3.3.3.3")).dst) == "3.3.3.3"
        assert str(ip.dst) == "2.2.2.2"

    def test_decremented(self):
        ip = IpHeader(ttl=5)
        assert ip.decremented().ttl == 4

    def test_swapped(self):
        ip = IpHeader(src=addr("1.1.1.1"), dst=addr("2.2.2.2")).swapped()
        assert (str(ip.src), str(ip.dst)) == ("2.2.2.2", "1.1.1.1")

    def test_tcp_flags_packing(self):
        assert TcpHeader(syn=True).flags == 0b10
        assert TcpHeader(fin=True, ack_flag=True).flags == 0b10001

    def test_udp_swap(self):
        u = UdpHeader(src_port=1, dst_port=2).swapped()
        assert (u.src_port, u.dst_port) == (2, 1)


class TestPacket:
    def test_size_includes_headers(self):
        p = udp_packet(addr("1.1.1.1"), addr("2.2.2.2"), 1, 2, b"x" * 10)
        assert p.size == 20 + 8 + 10
        t = tcp_packet(addr("1.1.1.1"), addr("2.2.2.2"), 1, 2, b"x" * 10)
        assert t.size == 20 + 20 + 10

    def test_proto_fixed_from_transport(self):
        p = Packet(ip=IpHeader(), transport=UdpHeader())
        assert p.ip.proto == 17
        t = Packet(ip=IpHeader(), transport=TcpHeader())
        assert t.ip.proto == 6

    def test_uids_unique(self):
        a = udp_packet(ANY_ADDR, ANY_ADDR, 0, 0, b"")
        b = udp_packet(ANY_ADDR, ANY_ADDR, 0, 0, b"")
        assert a.uid != b.uid

    def test_copy_tracks_provenance(self):
        a = udp_packet(ANY_ADDR, ANY_ADDR, 0, 0, b"data")
        c = a.copy()
        assert c.uid != a.uid
        assert c.copied_from == a.uid
        assert c.payload == a.payload

    def test_hop_decrements_ttl(self):
        a = udp_packet(ANY_ADDR, ANY_ADDR, 0, 0, b"")
        assert a.hop().ip.ttl == DEFAULT_TTL - 1
        assert a.ip.ttl == DEFAULT_TTL

    def test_default_ttl(self):
        assert udp_packet(ANY_ADDR, ANY_ADDR, 0, 0, b"").ip.ttl == 64
