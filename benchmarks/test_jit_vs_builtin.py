"""§2.4: execution-engine performance (the Ethernet-bridge class).

Paper claims: a JIT-compiled PLAN-P program "incurs no overhead in
overall system performance in comparison to the same program written in
C"; versus Java (Harissa), the generated code is twice as fast.  The
off-line Java comparison has no analogue here (no JVM offline), which
EXPERIMENTS.md records; the interpreter-vs-JIT-vs-native ladder is the
reproducible part.

Reproduced shape: JIT backends land within a small constant factor of
the hand-written Python version, the interpreter far behind.
"""

import pytest

from repro.experiments.microbench import (BRIDGE_ASP, run_engine_microbench)

from .conftest import print_table, shape_check

ENGINES = ("interpreter", "closure", "source", "builtin")
N_PACKETS = 20_000


@pytest.fixture(scope="module")
def ladder():
    results = {name: run_engine_microbench(name, n_packets=N_PACKETS)
               for name in ENGINES}
    builtin = results["builtin"].us_per_packet
    rows = [[name, f"{r.us_per_packet:.2f}",
             f"{r.packets_per_second / 1000:.0f}k",
             f"{r.us_per_packet / builtin:.2f}x"]
            for name, r in results.items()]
    print_table("Engine microbenchmark: flow-accounting bridge",
                ["engine", "us/packet", "packets/s", "vs builtin"],
                rows)
    return results


def test_jit_close_to_builtin(benchmark, ladder):
    shape_check(benchmark)
    """The paper's 'no overhead' claim, reproduced as: the faster JIT
    backend is within 2x of hand-written host code per packet."""
    builtin = ladder["builtin"].us_per_packet
    best_jit = min(ladder["closure"].us_per_packet,
                   ladder["source"].us_per_packet)
    assert best_jit < 2.0 * builtin


def test_jit_beats_interpreter(benchmark, ladder):
    shape_check(benchmark)
    """JIT compilation pays: at least 3x over the interpreter (the
    paper's motivation for generating the JIT at all)."""
    interp = ladder["interpreter"].us_per_packet
    for backend in ("closure", "source"):
        assert ladder[backend].us_per_packet * 3 < interp


def test_source_backend_at_least_as_fast_as_closure(benchmark, ladder):
    shape_check(benchmark)
    """Template compilation beats closure chains (as machine-code
    templates beat threaded interpretation in the paper's stack)."""
    assert ladder["source"].us_per_packet <= \
        ladder["closure"].us_per_packet * 1.2


@pytest.mark.parametrize("engine", ENGINES)
def test_engine_benchmark(benchmark, engine):
    """pytest-benchmark per-engine packet-processing timings."""
    from repro.experiments.microbench import (_NullContext,
                                              make_bridge_packets,
                                              builtin_bridge)
    from repro.interp.values import PlanPTable
    from repro.jit.pipeline import make_engine
    from repro.lang import parse, typecheck

    packets = make_bridge_packets()
    ctx = _NullContext()
    benchmark.group = "per-packet execution"
    if engine == "builtin":
        table = PlanPTable(1024)
        state = {"ps": 0, "i": 0}

        def run_builtin():
            state["ps"] = builtin_bridge(ctx, table, state["ps"],
                                         packets[state["i"] % 16])
            state["i"] += 1

        benchmark(run_builtin)
        return

    info = typecheck(parse(BRIDGE_ASP))
    eng = make_engine(info, engine, ctx)
    decl = info.channels["network"][0]
    state = {"ps": 0, "ss": eng.initial_channel_state(decl, ctx), "i": 0}

    def run_channel():
        state["ps"], state["ss"] = eng.run_channel(
            decl, state["ps"], state["ss"], packets[state["i"] % 16],
            ctx)
        state["i"] += 1

    benchmark(run_channel)
