"""Figure 3: code-generation time for the five experiment ASPs.

Paper (Tempo-generated JIT on 1998 hardware):

    program                      lines   codegen ms
    Audio Broadcasting (router)    68        11.0
    Audio Broadcasting (client)    28         6.2
    Extensible Web Server          91        15.3
    MPEG (monitor)                161        33.9
    MPEG (client)                  53         6.1

Reproduced claim: codegen is milliseconds-fast and scales with program
size (the MPEG monitor, the largest program, costs the most; the small
client programs the least).
"""

import pytest

from repro.experiments.fig3 import (PAPER_PROGRAMS, fig3_codegen_table,
                                    format_fig3_table)
from repro.interp.context import RecordingContext
from repro.jit.pipeline import make_engine
from repro.lang import parse, typecheck

from .conftest import print_table, shape_check


@pytest.fixture(scope="module")
def table():
    rows = fig3_codegen_table(repeats=7)
    print()
    print(format_fig3_table(rows))
    return rows


def test_fig3_shape_codegen_is_fast(benchmark, table):
    shape_check(benchmark)
    """Every ASP compiles in single-digit milliseconds (paper: 6-34 ms
    on a 170 MHz Ultra-1)."""
    for row in table:
        for backend, ms in row.codegen_ms.items():
            assert ms < 50, f"{row.name}/{backend}: {ms:.1f} ms"


def test_fig3_shape_cost_scales_with_size(benchmark, table):
    shape_check(benchmark)
    """The largest program (MPEG monitor) costs more to compile than the
    smallest (MPEG client), as in the paper's table."""
    by_name = {r.name: r for r in table}
    monitor = by_name["MPEG (monitor)"]
    client = by_name["MPEG (client)"]
    assert monitor.lines > client.lines
    for backend in monitor.codegen_ms:
        assert monitor.codegen_ms[backend] > client.codegen_ms[backend]


@pytest.mark.parametrize("name", sorted(PAPER_PROGRAMS))
@pytest.mark.parametrize("backend", ["closure", "source"])
def test_codegen_benchmark(benchmark, name, backend):
    """pytest-benchmark timings for each (program, JIT backend) cell."""
    source, _lines, _paper_ms = PAPER_PROGRAMS[name]
    info = typecheck(parse(source))
    benchmark.group = f"fig3 codegen: {name}"
    benchmark(lambda: make_engine(info, backend, RecordingContext()))
