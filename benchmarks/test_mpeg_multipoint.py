"""§3.3: point-to-point to multipoint MPEG delivery.

Paper (qualitative): with the monitor and capture ASPs, clients on the
same segment share one server connection; "no traffic rate degradation
is induced by the ASP" on the video.  Reproduced as: one server session
and ~1/N upstream traffic for N viewers, with every viewer at the
nominal frame rate.
"""

import pytest

from repro.apps.mpeg import run_mpeg_experiment

from .conftest import print_table, shape_check

N_CLIENTS = 3
DURATION = 15.0


@pytest.fixture(scope="module")
def pair():
    with_asps = run_mpeg_experiment(use_asps=True, n_clients=N_CLIENTS,
                                    duration=DURATION, warmup=2.0)
    without = run_mpeg_experiment(use_asps=False, n_clients=N_CLIENTS,
                                  duration=DURATION, warmup=2.0)
    rows = []
    for r in (without, with_asps):
        rows.append(["ASPs" if r.use_asps else "plain",
                     r.server_sessions,
                     f"{r.uplink_bytes / 1e6:.2f} MB",
                     ", ".join(f"{x:.1f}" for x in r.per_client_rate),
                     "/".join(r.modes)])
    print_table(f"MPEG multipoint: {N_CLIENTS} viewers of one stream",
                ["config", "server sessions", "uplink", "client fps",
                 "modes"], rows)
    return with_asps, without


def test_mpeg_single_upstream_session(benchmark, pair):
    shape_check(benchmark)
    with_asps, without = pair
    assert with_asps.server_sessions == 1
    assert without.server_sessions == N_CLIENTS


def test_mpeg_uplink_reduction(benchmark, pair):
    shape_check(benchmark)
    with_asps, without = pair
    ratio = with_asps.uplink_bytes / without.uplink_bytes
    assert ratio < 1.25 / N_CLIENTS + 0.15  # ~1/N plus control traffic
    print(f"\nuplink ratio with/without ASPs: {ratio:.2f} "
          f"(ideal 1/{N_CLIENTS} = {1 / N_CLIENTS:.2f})")


def test_mpeg_no_rate_degradation(benchmark, pair):
    shape_check(benchmark)
    """The paper's headline: sharing does not degrade the traffic rate
    any viewer receives."""
    with_asps, _ = pair
    assert with_asps.all_clients_at_full_rate
    spread = max(with_asps.per_client_rate) - min(
        with_asps.per_client_rate)
    assert spread < 0.1 * with_asps.nominal_fps


def test_mpeg_later_clients_shared(benchmark, pair):
    shape_check(benchmark)
    with_asps, _ = pair
    assert with_asps.modes == ["direct"] + ["shared"] * (N_CLIENTS - 1)


def test_mpeg_benchmark(benchmark):
    benchmark.group = "mpeg experiment"
    benchmark.pedantic(
        lambda: run_mpeg_experiment(use_asps=True, n_clients=2,
                                    duration=8.0),
        rounds=1, iterations=1)
