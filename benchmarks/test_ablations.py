"""Ablations for the design choices DESIGN.md calls out.

1. Load-balancing strategies (paper §5 future work: "several
   load-balancing algorithms"): modulo vs source-hash vs random.
2. Audio adaptation policy thresholds (the "strategies can be quickly
   developed and experimented with" claim): the hysteresis band's effect
   on delivered quality.
3. Execution backend choice for a full experiment (the JIT matters at
   the system level, not just in microbenchmarks).
"""

import pytest

from repro.apps.audio import run_audio_experiment
from repro.apps.audio.experiment import AUDIO_GROUP, SEGMENT_BANDWIDTH
from repro.apps.http import generate_trace, run_http_experiment
from repro.asps.audio import FMT_MONO16, FMT_MONO8, FMT_STEREO16

from .conftest import print_table, shape_check


class TestLoadBalancingStrategies:
    @pytest.fixture(scope="class")
    def results(self):
        trace = generate_trace(4000, seed=21)
        out = {strategy: run_http_experiment(
            "asp", 6, duration=10.0, warmup=3.0, strategy=strategy,
            trace=trace, seed=21)
            for strategy in ("modulo", "srchash", "random")}
        rows = [[s, f"{r.throughput_rps:.1f}",
                 f"{r.balance_ratio:.2f}", r.failures]
                for s, r in out.items()]
        print_table("Ablation: load-balancing strategies",
                    ["strategy", "req/s", "balance", "failures"], rows)
        return out

    def test_all_strategies_functional(self, benchmark, results):
        shape_check(benchmark)
        for strategy, r in results.items():
            assert r.failures == 0, strategy
            assert r.throughput_rps > 100, strategy

    def test_modulo_balances_best(self, benchmark, results):
        shape_check(benchmark)
        """Round-robin binding gives the tightest balance (determinism
        of the paper's chosen strategy)."""
        assert results["modulo"].balance_ratio >= \
            results["random"].balance_ratio - 0.02

    def test_throughput_insensitive_to_strategy(self, benchmark, results):
        shape_check(benchmark)
        rates = [r.throughput_rps for r in results.values()]
        assert max(rates) / min(rates) < 1.1


class TestAudioPolicyThresholds:
    def _run(self, head_low, head_mid):
        """Re-generate the router ASP with different thresholds and run
        the medium-load phase."""
        from repro.apps.audio.client import AudioClient
        from repro.apps.audio.loadgen import LoadGenerator
        from repro.apps.audio.source import AudioSource
        from repro.asps.audio import audio_client_asp, audio_router_asp
        from repro.net import Network
        from repro.runtime import Deployment

        net = Network(seed=7)
        src = net.add_host("src")
        router = net.add_router("router")
        client = net.add_host("client")
        loadgen_host = net.add_host("loadgen")
        sink = net.add_host("sink")
        net.link(src, router, bandwidth=100e6)
        seg = net.segment("lan", bandwidth=SEGMENT_BANDWIDTH)
        for n in (router, client, loadgen_host, sink):
            net.attach(n, seg)
        net.finalize()
        group = net.multicast_group(AUDIO_GROUP, src, [client])
        deployment = Deployment()
        deployment.install(
            audio_router_asp(headroom_low_kbps=head_low,
                             headroom_mid_kbps=head_mid), [router])
        deployment.install(audio_client_asp(), [client])
        source = AudioSource(net, src, group)
        sink_client = AudioClient(net, client, group)
        LoadGenerator(net, loadgen_host, sink.address).set_rate(900_000)
        source.start(until=15.0)
        net.run(until=15.0)
        return sink_client

    def test_aggressive_policy_degrades_more(self, benchmark):
        shape_check(benchmark)
        # Huge thresholds: everything looks congested -> 8-bit mono.
        aggressive = self._run(head_low=5000, head_mid=8000)
        # Tiny thresholds: nothing looks congested -> stereo.
        relaxed = self._run(head_low=10, head_mid=20)
        rows = [["aggressive (5000/8000)", "always degrade"],
                ["relaxed (10/20)", "never degrade"]]
        print_table("Ablation: adaptation thresholds",
                    ["policy", "expected"], rows)
        # Both clients' ASPs restore, so compare via the wire: the
        # relaxed router leaves stereo frames; detect via bandwidth.
        assert aggressive.frames_received > 0
        assert relaxed.frames_received > 0


class TestBackendAtSystemLevel:
    def test_interpreter_backend_same_results_slower_wall(self, benchmark):
        shape_check(benchmark)
        import time

        start = time.perf_counter()
        jit = run_audio_experiment(duration=10.0, backend="closure",
                                   constant_load_bps=1_700_000)
        jit_wall = time.perf_counter() - start
        start = time.perf_counter()
        interp = run_audio_experiment(duration=10.0,
                                      backend="interpreter",
                                      constant_load_bps=1_700_000)
        interp_wall = time.perf_counter() - start
        print(f"\nsystem-level wall time: closure={jit_wall:.2f}s "
              f"interpreter={interp_wall:.2f}s")
        # Identical simulated behaviour...
        assert interp.frames_received == jit.frames_received
        assert interp.quality_fractions == jit.quality_fractions
