"""Scale benchmark: the sharded core on a 10k-node topology.

Runs the ring-of-clusters scale workload (DESIGN §13) at
``shard_segments`` ∈ {1, 2, 4, 8} — serial for 1, one OS process per
segment otherwise — and asserts:

1. the delivery stream is byte-identical at every segment count (the
   sha256 over the key-sorted stream), and the small-configuration
   records are byte-identical between serial and the in-process
   sharded runner;
2. at 4 segments the run moves at least 2x the packets/sec of the
   serial run — asserted only when the machine actually has >= 4 CPUs
   (on a 1-CPU container the processes time-slice one core and the
   number measures scheduler overhead, the same clamp rule
   ``test_harness_parallel.py`` established);
3. every packet sent is delivered (the topology is provisioned, so a
   loss would mean a routing or boundary bug, not congestion).

Results land in ``BENCH_scale.json`` at the repo root: one row per
segment count (nodes, packets, events, wall seconds, packets/sec,
windows), plus the CPU context that gates the speedup assertion.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.scale import run_scale_experiment

from .conftest import print_table, shape_check

RESULTS_FILE = Path(__file__).parent.parent / "BENCH_scale.json"

#: the 10k-node configuration (100 clusters x (1 router + 99 hosts))
SCALE_PARAMS = dict(n_clusters=100, hosts_per_cluster=100,
                    packets_per_host=10, interval=0.02)
SMALL_PARAMS = dict(n_clusters=8, hosts_per_cluster=4,
                    packets_per_host=6)
SEGMENTS = (1, 2, 4, 8)
SEED = 5


def cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def canonical(record: dict) -> bytes:
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode()


class TestScaleBench:
    @pytest.fixture(scope="class")
    def runs(self):
        rows = []
        for segments in SEGMENTS:
            driver = "inline" if segments == 1 else "process"
            start = time.perf_counter()
            result = run_scale_experiment(
                seed=SEED, shard_segments=segments, driver=driver,
                **SCALE_PARAMS)
            wall = time.perf_counter() - start
            figs = result.figures
            rows.append({
                "segments": segments,
                "driver": driver,
                "nodes": figs["nodes"],
                "sent": figs["sent"],
                "delivered": figs["delivered"],
                "events": figs["events"],
                "windows": figs["windows"],
                "wall_s": round(wall, 2),
                "packets_per_s": round(figs["delivered"] / wall, 1),
                "delivery_sha256": figs["delivery_sha256"],
            })

        # small-config record identity: serial vs the in-process
        # sharded runner (the byte-for-byte bar; the process driver
        # merges a reduced metrics view, so it is held to
        # figure+stream identity instead)
        serial = run_scale_experiment(seed=SEED, shard_segments=1,
                                      **SMALL_PARAMS)
        identity = {
            "records_identical": all(
                canonical(run_scale_experiment(
                    seed=SEED, shard_segments=k,
                    **SMALL_PARAMS).record())
                == canonical(serial.record())
                for k in (2, 4)),
            "process_figures_identical": canonical(
                run_scale_experiment(
                    seed=SEED, shard_segments=4, driver="process",
                    **SMALL_PARAMS).record()["figures"])
            == canonical(serial.record()["figures"]),
        }

        base = rows[0]["packets_per_s"]
        print_table(
            "Sharded core: 10k nodes, packets/sec by segment count",
            ["segments", "driver", "windows", "wall s",
             "packets/s", "vs serial"],
            [[r["segments"], r["driver"], r["windows"], r["wall_s"],
              r["packets_per_s"],
              f"{r['packets_per_s'] / base:.2f}x"] for r in rows]
            + [["cpus", cores(), "", "", "", ""]])

        by_segments = {r["segments"]: r for r in rows}
        doc = {"scale": {
            "cpu_count": cores(),
            "speedup_gated": cores() < 4,
            "speedup_4": round(by_segments[4]["packets_per_s"]
                               / base, 2),
            "params": SCALE_PARAMS,
            "seed": SEED,
            "rows": rows,
            "identity": identity,
        }}
        RESULTS_FILE.write_text(json.dumps(doc, indent=2,
                                           sort_keys=True) + "\n")
        return rows, identity

    def test_delivery_identical_across_segments(self, benchmark, runs):
        # Asserted unconditionally: identity must hold at any segment
        # count on any machine.
        shape_check(benchmark)
        rows, _ = runs
        shas = {r["delivery_sha256"] for r in rows}
        assert len(shas) == 1, "delivery stream diverged"
        assert len({r["events"] for r in rows}) == 1
        for r in rows:
            assert r["nodes"] == 10_000
            assert r["delivered"] == r["sent"], r

    def test_small_config_byte_identical(self, benchmark, runs):
        shape_check(benchmark)
        _, identity = runs
        assert identity["records_identical"]
        assert identity["process_figures_identical"]

    def test_scale_speedup(self, benchmark, runs):
        shape_check(benchmark)
        if cores() < 4:
            pytest.skip(f"{cores()} CPU(s); 4-process speedup "
                        "measures time-slicing, not parallelism")
        rows, _ = runs
        by_segments = {r["segments"]: r for r in rows}
        speedup = (by_segments[4]["packets_per_s"]
                   / by_segments[1]["packets_per_s"])
        assert speedup >= 2.0, f"only {speedup:.2f}x at 4 segments"
