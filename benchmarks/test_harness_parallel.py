"""Harness benchmark: parallel sweeps are faster and byte-identical.

Runs the full standard matrix twice — serially, then fanned out over
worker processes — and asserts:

1. every result record is byte-identical between the two runs (the
   determinism contract the cache and the report depend on);
2. the parallel sweep is at least 3x faster wall-clock — asserted only
   when the requested worker count actually fit the machine (spawning
   4 workers on a 1-CPU box measures scheduler overhead, not speedup,
   so the pool is clamped to ``os.cpu_count()`` and the assertion is
   skipped when the clamp bit);
3. a re-run against the populated store is pure cache hits.

Results land in ``BENCH_harness.json`` at the repo root, recording both
the requested and the effective (clamped) worker counts.
"""

import json
import os
from pathlib import Path

import pytest

from repro.harness import ResultStore, Runner, standard_matrix

from .conftest import print_table, shape_check

RESULTS_FILE = Path(__file__).parent.parent / "BENCH_harness.json"
PARALLEL_WORKERS = 4


def effective_workers() -> int:
    """Requested pool size clamped to the CPUs actually present: a
    process pool wider than the machine only adds context-switch noise
    (the old unclamped run recorded a meaningless 0.95x "speedup" on a
    1-CPU container)."""
    return max(1, min(PARALLEL_WORKERS, os.cpu_count() or 1))


def canonical(record: dict) -> bytes:
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode()


class TestParallelSweep:
    @pytest.fixture(scope="class")
    def sweeps(self, tmp_path_factory):
        scenarios = standard_matrix()
        workers = effective_workers()
        serial_store = ResultStore(tmp_path_factory.mktemp("serial"))
        serial = Runner(serial_store, workers=1,
                        use_cache=False).sweep(scenarios)
        parallel_store = ResultStore(tmp_path_factory.mktemp("par"))
        parallel = Runner(parallel_store, workers=workers,
                          use_cache=False).sweep(scenarios)
        resumed = Runner(serial_store, workers=1).sweep(scenarios)

        speedup = serial.wall_s / parallel.wall_s
        print_table(
            "Harness: standard matrix, serial vs parallel",
            ["run", "scenarios", "wall s"],
            [["serial (1 worker)", len(serial.lines),
              f"{serial.wall_s:.1f}"],
             [f"parallel ({workers} of {PARALLEL_WORKERS} requested)",
              len(parallel.lines), f"{parallel.wall_s:.1f}"],
             ["re-run (cache)", len(resumed.lines),
              f"{resumed.wall_s:.2f}"],
             ["speedup", "", f"{speedup:.2f}x"],
             ["cpu_count", "", str(os.cpu_count())]])

        doc = {"parallel_sweep": {
            "cpu_count": os.cpu_count(),
            "workers_requested": PARALLEL_WORKERS,
            "workers_effective": workers,
            "clamped": workers < PARALLEL_WORKERS,
            "n_scenarios": len(serial.lines),
            "serial_wall_s": round(serial.wall_s, 2),
            "parallel_wall_s": round(parallel.wall_s, 2),
            "speedup": round(speedup, 2),
            "byte_identical": serial.records_by_name()
            == parallel.records_by_name(),
            "cache_rerun_wall_s": round(resumed.wall_s, 3),
            "serial_elapsed_s": {
                line["scenario"]: line["elapsed_s"]
                for line in serial.lines},
        }}
        RESULTS_FILE.write_text(json.dumps(doc, indent=2,
                                           sort_keys=True) + "\n")
        return serial, parallel, resumed

    def test_records_byte_identical(self, benchmark, sweeps):
        # Asserted unconditionally: determinism must hold at any
        # worker count, clamped or not.
        shape_check(benchmark)
        serial, parallel, _ = sweeps
        serial_records = serial.records_by_name()
        parallel_records = parallel.records_by_name()
        assert set(serial_records) == set(parallel_records)
        for name, record in serial_records.items():
            assert canonical(record) \
                == canonical(parallel_records[name]), name

    def test_parallel_speedup(self, benchmark, sweeps):
        shape_check(benchmark)
        workers = effective_workers()
        if workers < PARALLEL_WORKERS:
            pytest.skip(
                f"clamped to {workers} worker(s) on "
                f"{os.cpu_count()} CPU(s); speedup not meaningful")
        serial, parallel, _ = sweeps
        speedup = serial.wall_s / parallel.wall_s
        assert speedup >= 3.0, \
            f"only {speedup:.2f}x at {workers} workers"

    def test_rerun_is_pure_cache(self, benchmark, sweeps):
        shape_check(benchmark)
        serial, _, resumed = sweeps
        assert resumed.ran == []
        assert sorted(resumed.cached) \
            == sorted(s.name for s in standard_matrix())
        assert resumed.records_by_name() == serial.records_by_name()
