"""§2.1: verifier cost and its claimed complexity behaviour.

The paper argues late checking is practical: the termination state space
is ~r·d·2^d (r emission sites, d destinations) and duplication reaches a
fix-point in at most 2^c iterations (c channels) — all small for real
protocols.  This bench measures verification time for the shipped ASPs
and for synthetic programs of growing size.
"""

import time

import pytest

from repro.analysis import verify_report
from repro.asps import (audio_client_asp, audio_router_asp,
                        http_gateway_asp, mpeg_client_asp,
                        mpeg_monitor_asp)
from repro.lang import parse, typecheck

from .conftest import print_table, shape_check

ASPS = {
    "audio-router": audio_router_asp(),
    "audio-client": audio_client_asp(),
    "http-gateway": http_gateway_asp("10.0.1.2",
                                     ["10.0.2.2", "10.0.3.2"]),
    "mpeg-monitor": mpeg_monitor_asp(),
    "mpeg-client": mpeg_client_asp(),
}


def synthetic_program(n_channels: int) -> str:
    """A chain of n forwarding channels (c0 -> c1 -> ... -> deliver)."""
    decls = []
    for i in range(n_channels - 1):
        decls.append(
            f"channel c{i}(ps : int, ss : unit, p : ip*udp*blob) is "
            f"(OnRemote(c{i + 1}, p); (ps, ss))")
    decls.append(
        f"channel c{n_channels - 1}(ps : int, ss : unit, "
        f"p : ip*udp*blob) is (deliver(p); (ps, ss))")
    return "\n".join(decls)


def test_verifier_cost_table(benchmark):
    shape_check(benchmark)
    rows = []
    for name, source in ASPS.items():
        info = typecheck(parse(source))
        start = time.perf_counter()
        report = verify_report(info)
        elapsed = (time.perf_counter() - start) * 1000
        assert report.passed
        gt = report.global_termination
        rows.append([name, f"{elapsed:.2f}",
                     gt.states_explored if gt else "-",
                     gt.emission_sites if gt else "-",
                     report.duplication.fixpoint_iterations
                     if report.duplication else "-"])
    print_table("Verifier cost for the shipped ASPs",
                ["program", "total ms", "termination states",
                 "emission sites", "duplication iters"], rows)


def test_verifier_scales_with_channel_count(benchmark):
    shape_check(benchmark)
    rows = []
    timings = {}
    for n in (2, 8, 32):
        info = typecheck(parse(synthetic_program(n)))
        start = time.perf_counter()
        report = verify_report(info)
        timings[n] = (time.perf_counter() - start) * 1000
        assert report.passed
        assert report.duplication is not None
        # The monotone fix-point settles within c+1 sweeps, far below
        # the paper's worst-case 2^c schedule.
        assert report.duplication.fixpoint_iterations <= n + 1
        rows.append([n, f"{timings[n]:.2f}",
                     report.duplication.fixpoint_iterations])
    print_table("Verifier cost vs synthetic program size",
                ["channels", "total ms", "duplication iters"], rows)
    assert timings[32] < 2000  # stays practical


@pytest.mark.parametrize("name", sorted(ASPS))
def test_verifier_benchmark(benchmark, name):
    info = typecheck(parse(ASPS[name]))
    benchmark.group = "verification"
    benchmark(lambda: verify_report(info))
