"""Packet-dispatch fast path and program-cache benchmarks (this
implementation's perf work, not a paper figure).

Two claims are measured and asserted:

1. classifying + decoding a packet through the precomputed match table
   is at least 2x faster than the structural baseline the layer used
   before (two ``_match`` walks plus a structural ``codec.decode``);
2. deploying one real ASP (the Figure 3 connection monitor) to 16
   routers over the network is at least 5x faster wall-clock with the
   content-addressed program cache than without, with >= 15 of the 16
   installs acknowledging a cache hit.

Results land in ``BENCH_dispatch.json`` at the repo root.
"""

import json
import time
from pathlib import Path

import pytest

from repro.asps.mpeg import mpeg_monitor_asp
from repro.jit import pipeline
from repro.jit.pipeline import ProgramCache
from repro.net import Network
from repro.net.packet import tcp_packet, udp_packet
from repro.runtime import PlanPLayer, codec
from repro.runtime.netdeploy import DeploymentManager, DeploymentService

from .conftest import print_table, shape_check

RESULTS_FILE = Path(__file__).parent.parent / "BENCH_dispatch.json"

DISPATCH_PROGRAM = """
channel network(ps : int, ss : unit, p : ip*udp*host*int) is
  (deliver(p); (ps + 1, ss))
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
channel network(ps : int, ss : unit, p : ip*tcp*char*blob) is
  (OnRemote(network, p); (ps + 1, ss))
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
"""

N_ROUTERS = 16
DEPLOY_TRIALS = 3


def _merge_results(update: dict) -> None:
    data = {}
    if RESULTS_FILE.exists():
        data = json.loads(RESULTS_FILE.read_text())
    data.update(update)
    RESULTS_FILE.write_text(json.dumps(data, indent=2) + "\n")


def _dispatch_layer():
    net = Network(seed=11)
    a = net.add_host("a")
    r = net.add_router("r")
    b = net.add_host("b")
    net.link(a, r)
    net.link(r, b)
    net.finalize()
    layer = PlanPLayer(r)
    layer.install(DISPATCH_PROGRAM)
    packets = [
        udp_packet(a.address, b.address, 1, 2, bytes(8)),
        udp_packet(a.address, b.address, 1, 2, bytes(100)),
        tcp_packet(a.address, b.address, 1, 80, b"G" + bytes(40)),
        tcp_packet(a.address, b.address, 1, 80, b""),
    ]
    return layer, packets


class TestDispatchMicrobench:
    @pytest.fixture(scope="class")
    def speedup(self):
        layer, packets = _dispatch_layer()

        def structural(ps):
            # What the old wants()/process() pair did per packet: two
            # structural match walks plus a structural decode.
            for p in ps:
                layer._match(p)
                decl = layer._match(p)
                codec.decode(p, decl.packet_type)

        def fastpath(ps):
            for p in ps:
                decl, decoder, _plan = layer._lookup(p)
                decoder(p)

        batch = packets * 250
        for fn in (structural, fastpath):  # warm up
            fn(batch)
        def time_once(fn):
            start = time.perf_counter()
            fn(batch)
            return time.perf_counter() - start

        n_packets = len(batch)
        timings = {}
        for name, fn in (("structural", structural),
                         ("fastpath", fastpath)):
            best = min(time_once(fn) for _ in range(5))
            timings[name] = best / n_packets * 1e6  # us/packet
        ratio = timings["structural"] / timings["fastpath"]
        print_table(
            "Dispatch: structural match vs precomputed table",
            ["path", "us/packet"],
            [["structural (2x match + decode)",
              f"{timings['structural']:.3f}"],
             ["fast path (table + prebuilt decoder)",
              f"{timings['fastpath']:.3f}"],
             ["speedup", f"{ratio:.1f}x"]])
        _merge_results({"dispatch": {
            "structural_us_per_packet": round(timings["structural"], 4),
            "fastpath_us_per_packet": round(timings["fastpath"], 4),
            "speedup": round(ratio, 2),
        }})
        return ratio

    def test_fastpath_at_least_2x(self, benchmark, speedup):
        shape_check(benchmark)
        assert speedup >= 2.0

    def test_fastpath_equivalent(self, benchmark):
        shape_check(benchmark)
        layer, packets = _dispatch_layer()
        for p in packets:
            decl, decoder, _plan = layer._lookup(p)
            assert decl is layer._match(p)
            assert decoder(p) == codec.decode(p, decl.packet_type)


BATCH_SIZE = 64


class TestBatchTier:
    """Tier 3: grouping a stream into same-entry runs and decoding each
    run's struct-of-arrays batch must beat the per-packet fast path by
    3x (CI floor; the local goal recorded in BENCH_dispatch.json is
    5x at batch=64)."""

    @pytest.fixture(scope="class")
    def results(self):
        layer, kinds = _dispatch_layer()
        stream = []
        for _ in range(4):
            for kind in kinds:
                stream.extend(kind.copy() for _ in range(BATCH_SIZE))

        def fastpath(ps):
            lookup = layer._lookup
            for p in ps:
                decl, decoder, _plan = lookup(p)
                decoder(p)

        def batch_soa(ps):
            # The production tier-3 accounting unit: classify runs once
            # each and decode their raw columns.
            for decl, batch in layer.classify_batches(ps, BATCH_SIZE):
                batch.soa()

        def batch_rows(ps):
            # Full AoS materialization (every value converted) — the
            # upper bound a batch loop pays when it touches every field.
            for decl, batch in layer.classify_batches(ps, BATCH_SIZE):
                batch.rows()

        for fn in (fastpath, batch_soa, batch_rows):  # warm up
            fn(stream)

        def time_once(fn):
            start = time.perf_counter()
            fn(stream)
            return time.perf_counter() - start

        n = len(stream)
        best = {"fastpath": [], "soa": [], "rows": []}
        for _ in range(7):  # interleaved: noise hits all paths alike
            best["fastpath"].append(time_once(fastpath))
            best["soa"].append(time_once(batch_soa))
            best["rows"].append(time_once(batch_rows))
        us = {name: min(times) / n * 1e6
              for name, times in best.items()}
        soa_speedup = us["fastpath"] / us["soa"]
        rows_speedup = us["fastpath"] / us["rows"]
        print_table(
            f"Tier 3: batched SoA decode vs per-packet fast path "
            f"(batch={BATCH_SIZE}, {n} packets, best of 7)",
            ["path", "us/packet"],
            [["per-packet fast path", f"{us['fastpath']:.3f}"],
             ["batch (SoA columns)", f"{us['soa']:.3f}"],
             ["batch (full rows)", f"{us['rows']:.3f}"],
             ["SoA speedup", f"{soa_speedup:.1f}x"],
             ["rows speedup", f"{rows_speedup:.1f}x"]])
        _merge_results({"batch": {
            "batch_size": BATCH_SIZE,
            "fastpath_us_per_packet": round(us["fastpath"], 4),
            "us_per_packet": round(us["soa"], 4),
            "speedup_vs_fastpath": round(soa_speedup, 2),
            "rows_us_per_packet": round(us["rows"], 4),
            "rows_speedup_vs_fastpath": round(rows_speedup, 2),
        }})
        return {"us": us, "speedup": soa_speedup}

    def test_batch_at_least_3x(self, benchmark, results):
        # CI floor; BENCH_dispatch.json records the >=5x local figure.
        shape_check(benchmark)
        assert results["speedup"] >= 3.0

    def test_batches_equivalent_to_serial_decode(self, benchmark):
        shape_check(benchmark)
        layer, kinds = _dispatch_layer()
        stream = [kind.copy() for kind in kinds
                  for _ in range(BATCH_SIZE)]
        batches = layer.classify_batches(stream, BATCH_SIZE)
        assert [len(b) for _d, b in batches] == [BATCH_SIZE] * len(kinds)
        i = 0
        for decl, batch in batches:
            for row, p in zip(batch.rows(), batch.packets):
                assert p is stream[i]
                assert decl is layer._match(p)
                assert row == codec.decode(p, decl.packet_type)
                i += 1
        assert i == len(stream)


def _deploy_once(cache) -> tuple[float, int]:
    """Push the monitor ASP to N_ROUTERS nodes through ``cache``;
    returns (wall seconds, number of cache-hit acks)."""
    net = Network(seed=41)
    admin = net.add_host("admin")
    routers = [net.add_router(f"r{i}") for i in range(N_ROUTERS)]
    for router in routers:
        net.link(admin, router, bandwidth=100e6)
    net.finalize()
    for router in routers:
        DeploymentService(net, router)
    manager = DeploymentManager(net, admin)
    source = mpeg_monitor_asp()
    saved = pipeline.PROGRAM_CACHE
    pipeline.PROGRAM_CACHE = cache
    try:
        start = time.perf_counter()
        xfer = manager.push(source, [r.address for r in routers])
        net.run(until=30.0)
        elapsed = time.perf_counter() - start
    finally:
        pipeline.PROGRAM_CACHE = saved
    assert manager.all_ok(xfer)
    hits = sum(1 for s in manager.status(xfer).values() if s.cache_hit)
    return elapsed, hits


class TestNetdeployCacheBench:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for name, make_cache in (("uncached",
                                  lambda: ProgramCache(max_entries=0)),
                                 ("cached", ProgramCache)):
            best, hits = min(_deploy_once(make_cache())
                             for _ in range(DEPLOY_TRIALS))
            out[name] = {"wall_s": best, "cache_hit_acks": hits}
        ratio = out["uncached"]["wall_s"] / out["cached"]["wall_s"]
        out["speedup"] = ratio
        print_table(
            f"Netdeploy: {N_ROUTERS}-router push of the Fig.3 monitor "
            f"ASP (best of {DEPLOY_TRIALS})",
            ["configuration", "wall s", "cache-hit acks"],
            [["uncached", f"{out['uncached']['wall_s']:.3f}",
              out["uncached"]["cache_hit_acks"]],
             ["cached", f"{out['cached']['wall_s']:.3f}",
              out["cached"]["cache_hit_acks"]],
             ["speedup", f"{ratio:.1f}x", ""]])
        _merge_results({"netdeploy_16_nodes": {
            "uncached_wall_s": round(out["uncached"]["wall_s"], 4),
            "cached_wall_s": round(out["cached"]["wall_s"], 4),
            "speedup": round(ratio, 2),
            "cache_hit_acks": out["cached"]["cache_hit_acks"],
            "n_routers": N_ROUTERS,
        }})
        return out

    def test_cached_deploy_at_least_5x_faster(self, benchmark, results):
        shape_check(benchmark)
        assert results["speedup"] >= 5.0

    def test_cache_hits_cover_all_but_first_node(self, benchmark,
                                                 results):
        shape_check(benchmark)
        assert results["cached"]["cache_hit_acks"] >= N_ROUTERS - 1
        assert results["uncached"]["cache_hit_acks"] == 0
