"""Observability overhead benchmark (this implementation's perf work).

The observability layer's contract is that the per-packet hot path pays
nothing it did not opt into: existing stat holders stay plain ``int``
fields read by snapshot-time callbacks, and per-packet instruments hide
behind ``None``/empty-list guards.  Two claims are measured:

1. the dispatch fast path on a fully wired network (metrics registry,
   drop taps, event log — the shipping default) is within 5% of the
   same loop on a bare node with no observability attached at all,
   measured in the same process run so machine noise cancels;
2. the opt-in per-packet profiling histogram
   (:meth:`PlanPLayer.enable_profiling`) has a *measured, recorded*
   cost — it is deliberately not free, which is why it is opt-in.

Results land in ``BENCH_obs.json`` at the repo root, including the
ratio against the stored ``BENCH_dispatch.json`` fast-path baseline
(recorded for trend-watching, not asserted — cross-run machine noise
at ~1.4 us/packet would make that flaky).
"""

import json
import time
from pathlib import Path

import pytest

from repro.net import Network
from repro.net.node import Host
from repro.net.packet import tcp_packet, udp_packet
from repro.net.sim import Simulator
from repro.runtime import PlanPLayer

from .conftest import print_table, shape_check

RESULTS_FILE = Path(__file__).parent.parent / "BENCH_obs.json"
DISPATCH_BASELINE_FILE = Path(__file__).parent.parent \
    / "BENCH_dispatch.json"

DISPATCH_PROGRAM = """
channel network(ps : int, ss : unit, p : ip*udp*host*int) is
  (deliver(p); (ps + 1, ss))
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
channel network(ps : int, ss : unit, p : ip*tcp*char*blob) is
  (OnRemote(network, p); (ps + 1, ss))
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
"""

MAX_OVERHEAD_PCT = 5.0


def _packets(a_addr, b_addr):
    return [
        udp_packet(a_addr, b_addr, 1, 2, bytes(8)),
        udp_packet(a_addr, b_addr, 1, 2, bytes(100)),
        tcp_packet(a_addr, b_addr, 1, 80, b"G" + bytes(40)),
        tcp_packet(a_addr, b_addr, 1, 80, b""),
    ]


def _wired_layer():
    """A layer on a router inside a Network: registry callbacks
    registered, node and link drop taps wired, event log live."""
    net = Network(seed=11)
    a = net.add_host("a")
    r = net.add_router("r")
    b = net.add_host("b")
    net.link(a, r)
    net.link(r, b)
    net.finalize()
    layer = PlanPLayer(r)
    layer.install(DISPATCH_PROGRAM)
    return layer, _packets(a.address, b.address)


def _bare_layer():
    """The same layer on a node with no observability attached — no
    registry, no taps, ``node.obs`` is None."""
    node = Host(Simulator(seed=11), "bare")
    layer = PlanPLayer(node)
    layer.install(DISPATCH_PROGRAM)
    return layer


def _dispatch_once(layer, batch) -> float:
    start = time.perf_counter()
    for p in batch:
        decl, decoder, _plan = layer._lookup(p)
        decoder(p)
    return time.perf_counter() - start


def _time_process(layer, batch) -> float:
    """Best-of-5 us/packet for the full wants()/process() pair."""
    def once():
        start = time.perf_counter()
        for p in batch:
            if layer.wants(p, None):
                layer.process(p, None)
        return time.perf_counter() - start

    once()  # warm up
    return min(once() for _ in range(5)) / len(batch) * 1e6


class TestDispatchObsOverhead:
    @pytest.fixture(scope="class")
    def overhead(self):
        wired, packets = _wired_layer()
        bare = _bare_layer()
        batch = packets * 250
        # Alternate rounds between the two configurations so frequency
        # scaling and cache state drift hit both sides alike; compare
        # the best round of each.
        for layer in (wired, bare):  # warm up
            _dispatch_once(layer, batch)
        wired_s = bare_s = float("inf")
        for _ in range(7):
            wired_s = min(wired_s, _dispatch_once(wired, batch))
            bare_s = min(bare_s, _dispatch_once(bare, batch))
        wired_us = wired_s / len(batch) * 1e6
        bare_us = bare_s / len(batch) * 1e6
        pct = (wired_us / bare_us - 1.0) * 100.0

        stored = None
        if DISPATCH_BASELINE_FILE.exists():
            data = json.loads(DISPATCH_BASELINE_FILE.read_text())
            stored = data.get("dispatch", {}).get(
                "fastpath_us_per_packet")
        vs_stored = wired_us / stored if stored else None

        print_table(
            "Dispatch fast path: bare node vs fully wired network",
            ["configuration", "us/packet"],
            [["bare (no observability)", f"{bare_us:.3f}"],
             ["wired (registry + taps + events)", f"{wired_us:.3f}"],
             ["overhead", f"{pct:+.2f}%"],
             ["vs stored BENCH_dispatch baseline",
              f"{vs_stored:.2f}x" if vs_stored else "n/a"]])
        _merge_results({"dispatch_with_obs": {
            "bare_us_per_packet": round(bare_us, 4),
            "wired_us_per_packet": round(wired_us, 4),
            "overhead_pct": round(pct, 2),
            "stored_baseline_us": stored,
            "vs_stored_baseline":
                round(vs_stored, 3) if vs_stored else None,
        }})
        return pct

    def test_overhead_under_5_pct(self, benchmark, overhead):
        shape_check(benchmark)
        assert overhead < MAX_OVERHEAD_PCT


class TestOptInProfilingCost:
    @pytest.fixture(scope="class")
    def costs(self):
        layer, packets = _wired_layer()
        batch = packets * 250
        plain_us = _time_process(layer, batch)
        layer.enable_profiling()
        profiled_us = _time_process(layer, batch)
        layer.profile = None
        pct = (profiled_us / plain_us - 1.0) * 100.0
        print_table(
            "Full process path: opt-in per-packet profiling",
            ["configuration", "us/packet"],
            [["profile off (default)", f"{plain_us:.3f}"],
             ["profile on (histogram per packet)",
              f"{profiled_us:.3f}"],
             ["cost of opting in", f"{pct:+.1f}%"]])
        _merge_results({"profiling_optin": {
            "plain_us_per_packet": round(plain_us, 4),
            "profiled_us_per_packet": round(profiled_us, 4),
            "overhead_pct": round(pct, 2),
        }})
        return plain_us, profiled_us

    def test_profiling_recorded(self, benchmark, costs):
        shape_check(benchmark)
        plain_us, profiled_us = costs
        # No 5% bound here — opt-in profiling is allowed to cost; the
        # claim is only that it was measured and is bounded sanely.
        assert profiled_us < plain_us * 3.0


def _merge_results(update: dict) -> None:
    data = {}
    if RESULTS_FILE.exists():
        data = json.loads(RESULTS_FILE.read_text())
    data.update(update)
    RESULTS_FILE.write_text(json.dumps(data, indent=2) + "\n")
