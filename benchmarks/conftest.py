"""Shared reporting helpers for the benchmark harness.

Every benchmark prints a paper-vs-measured comparison table to stdout
(visible with ``pytest benchmarks/ --benchmark-only -s`` and in the
captured output section otherwise), and the key rows are asserted so a
regression in experiment *shape* fails the suite, not just drifts.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str],
                rows: list[list[object]]) -> None:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(headers)]
    print(f"\n=== {title}")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def shape_check(benchmark) -> None:
    """Give shape-assertion tests a benchmark record so they are not
    skipped under ``--benchmark-only`` (the timing itself is a no-op;
    the value of these tests is their assertions and printed tables)."""
    try:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    except Exception:
        pass
