"""Figure 6: audio bandwidth vs time under the stepped load schedule.

Paper: 176 kbit/s (16-bit stereo) with no load; an immediate drop to
44 kbit/s (8-bit mono) when the large load starts at 100 s; oscillation
between 44 and 88 under the medium load at 220 s; 88 kbit/s (16-bit
mono) under the small load at 340 s.

Reproduced on a 45-second scaled clock (breakpoints at 10/22/34 s); the
asserted *shape* is the quality level and mean bandwidth of each phase
plus the immediacy of the first transition.
"""

import pytest

from repro.apps.audio import run_audio_experiment
from repro.apps.audio.codec import FORMAT_NAMES
from repro.asps.audio import FMT_MONO16, FMT_MONO8, FMT_STEREO16

from .conftest import print_table, shape_check

DURATION = 45.0

#: (phase, window, paper kbit/s, paper quality)
PHASES = [
    ("no load", (1, 9), 176, FMT_STEREO16),
    ("large load", (12, 21), 44, FMT_MONO8),
    ("medium load", (24, 33), None, None),   # oscillates 44..88
    ("small load", (36, 44), 88, FMT_MONO16),
]


@pytest.fixture(scope="module")
def result():
    return run_audio_experiment(duration=DURATION)


def test_fig6_phases(benchmark, result):
    shape_check(benchmark)
    rows = []
    for name, (a, b), paper_kbps, paper_quality in PHASES:
        mean = result.mean_kbps_between(a, b)
        dominant = result.dominant_quality_between(a, b)
        rows.append([name, f"{a}-{b}s",
                     paper_kbps if paper_kbps else "44..88 (osc)",
                     f"{mean:.1f}", FORMAT_NAMES[dominant]])
        if paper_kbps is not None:
            assert mean == pytest.approx(paper_kbps, abs=10), name
            assert dominant == paper_quality, name
    print_table("Figure 6: audio bandwidth per load phase (scaled run)",
                ["phase", "window", "paper kbit/s", "measured kbit/s",
                 "dominant quality"], rows)

    # The medium phase oscillates between both mono levels.
    qualities = result.qualities_between(24, 33)
    assert FMT_MONO8 in qualities and FMT_MONO16 in qualities
    mean = result.mean_kbps_between(24, 33)
    assert 44 < mean < 88


def test_fig6_adaptation_immediate(benchmark, result):
    shape_check(benchmark)
    """The drop to 8-bit mono happens within ~2 s of the load step
    (paper: 'the adaptation is immediate ... avoiding the need for
    software feedback')."""
    assert result.dominant_quality_between(12, 14) == FMT_MONO8


def test_fig6_client_transparency(benchmark, result):
    shape_check(benchmark)
    assert result.restored
    assert result.frames_received == result.frames_sent


def test_fig6_benchmark(benchmark):
    """Wall-clock cost of regenerating the figure (one full run)."""
    benchmark.group = "fig6 experiment"
    benchmark.pedantic(
        lambda: run_audio_experiment(duration=DURATION),
        rounds=1, iterations=1)
