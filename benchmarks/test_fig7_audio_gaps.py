"""Figure 7: silent periods during playback, with vs without adaptation.

Paper: graphs of the number of silent periods in various configurations,
showing "that the adaptation does, in fact, reduce the number of gaps in
audio playback".

Reproduced shape: under light load neither configuration gaps; as the
load saturates the segment, the unadapted stream loses frames and gaps
repeatedly while the adapted stream shrinks below the available
bandwidth and keeps playing.
"""

import pytest

from repro.apps.audio import run_gap_sweep

from .conftest import print_table, shape_check

LOADS = [800_000, 1_500_000, 1_900_000]
DURATION = 25.0


@pytest.fixture(scope="module")
def sweep():
    return run_gap_sweep(LOADS, duration=DURATION)


def test_fig7_gap_table(benchmark, sweep):
    shape_check(benchmark)
    rows = []
    for load in LOADS:
        row = sweep[load]
        rows.append([f"{load / 1e6:.1f} Mbit/s",
                     row["without_adaptation"], row["with_adaptation"],
                     row["without_frames"], row["with_frames"]])
    print_table("Figure 7: silent periods under constant load "
                f"({DURATION:.0f} s runs)",
                ["offered load", "gaps (no ASP)", "gaps (ASP)",
                 "frames (no ASP)", "frames (ASP)"], rows)

    heavy = sweep[LOADS[-1]]
    assert heavy["without_adaptation"] > 10
    assert heavy["with_adaptation"] <= heavy["without_adaptation"] // 5

    light = sweep[LOADS[0]]
    assert light["without_adaptation"] == 0
    assert light["with_adaptation"] == 0


def test_fig7_adaptation_preserves_frames(benchmark, sweep):
    shape_check(benchmark)
    heavy = sweep[LOADS[-1]]
    assert heavy["with_frames"] > heavy["without_frames"]


def test_fig7_benchmark(benchmark):
    benchmark.group = "fig7 experiment"
    benchmark.pedantic(
        lambda: run_gap_sweep([1_900_000], duration=10.0),
        rounds=1, iterations=1)
