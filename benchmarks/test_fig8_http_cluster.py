"""Figure 8: HTTP cluster throughput vs offered load.

Paper: curves for (a) a single server, (b) the ASP-based load-balancing
gateway over two servers, (c) the built-in C gateway.  Headline numbers:
"little or no difference" between b and c; the ASP gateway serves 1.75x
the load of a single server and ~85% of two servers with disjoint
clients (the gateway is a contention point).
"""

import pytest

from repro.apps.http import generate_trace, run_http_experiment

from .conftest import print_table, shape_check

CLIENTS = [2, 4, 8]
DURATION = 12.0
WARMUP = 3.0


@pytest.fixture(scope="module")
def curves():
    trace = generate_trace(6000, seed=11)
    out = {}
    for mode in ("single", "asp", "builtin", "disjoint"):
        out[mode] = {
            n: run_http_experiment(mode, n, duration=DURATION,
                                   warmup=WARMUP, trace=trace)
            for n in CLIENTS}
    rows = []
    for n in CLIENTS:
        rows.append([n] + [f"{out[mode][n].throughput_rps:.1f}"
                           for mode in ("single", "asp", "builtin",
                                        "disjoint")])
    print_table("Figure 8: throughput (req/s) vs number of clients",
                ["clients", "single (a)", "ASP gw (b)", "C gw (c)",
                 "disjoint"], rows)
    return out


def test_fig8_asp_equals_builtin(benchmark, curves):
    shape_check(benchmark)
    """Curves b and c coincide (paper: 'little or no difference')."""
    for n in CLIENTS:
        asp = curves["asp"][n].throughput_rps
        builtin = curves["builtin"][n].throughput_rps
        assert asp == pytest.approx(builtin, rel=0.05), f"n={n}"


def test_fig8_headline_ratio_vs_single(benchmark, curves):
    shape_check(benchmark)
    """At saturation the ASP cluster serves ~1.75x one server."""
    n = CLIENTS[-1]
    ratio = (curves["asp"][n].throughput_rps
             / curves["single"][n].throughput_rps)
    assert 1.55 < ratio < 1.95
    print(f"\nASP/single at {n} clients: {ratio:.2f} (paper: 1.75)")


def test_fig8_gateway_contention(benchmark, curves):
    shape_check(benchmark)
    """~85% of two servers with disjoint clients."""
    n = CLIENTS[-1]
    ratio = (curves["asp"][n].throughput_rps
             / curves["disjoint"][n].throughput_rps)
    assert 0.75 < ratio < 0.95
    print(f"ASP/disjoint at {n} clients: {ratio:.2f} (paper: ~0.85)")


def test_fig8_saturation_plateau(benchmark, curves):
    shape_check(benchmark)
    """The single-server curve saturates: doubling clients from 4 to 8
    barely moves it, while the cluster still gains."""
    single_gain = (curves["single"][8].throughput_rps
                   / curves["single"][4].throughput_rps)
    asp_gain = (curves["asp"][8].throughput_rps
                / curves["asp"][4].throughput_rps)
    assert single_gain < 1.15
    assert asp_gain > single_gain


def test_fig8_balance(benchmark, curves):
    shape_check(benchmark)
    assert curves["asp"][8].balance_ratio > 0.95


def test_fig8_benchmark(benchmark):
    trace = generate_trace(2000, seed=11)
    benchmark.group = "fig8 experiment"
    benchmark.pedantic(
        lambda: run_http_experiment("asp", 4, duration=8.0, warmup=2.0,
                                    trace=trace),
        rounds=1, iterations=1)
