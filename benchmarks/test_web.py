"""Web overload benchmark: goodput retention under attack (DESIGN §14).

Runs the overload drill's floor-gated cells — the no-attack baseline
plus {syn, elephant, flash} x {shedding off, on} — and reports each
cell's good-client goodput as a *retention* fraction of the baseline.
The acceptance floors:

1. with the shedding ASP at the gateway (plus endpoint degradation),
   good clients keep >= 70% of their no-attack goodput through a 10x
   SYN flood and through an elephant-flow pile-on;
2. with shedding off, the same attacks collapse goodput below 30% —
   the control that proves the attack is real, not that the defense
   is trivial;
3. the syn+shedding cell's record is byte-identical serial vs the
   in-process sharded runner (``shard_segments=2``) — the defense does
   not cost determinism.

The flash-crowd cells are reported (and must shed, degrade and
survive) but are not floor-gated: an admission controller cannot tell
a crowd visitor from a regular client — they are the same traffic —
so flash retention measures fair sharing, not filtering.

Results land in ``BENCH_web.json`` at the repo root: one row per cell
(goodput, retention, shed/drop/abandon counters, wall seconds).
"""

import json
import time
from pathlib import Path

import pytest

from repro.experiments.web import run_web_experiment

from .conftest import print_table, shape_check

RESULTS_FILE = Path(__file__).parent.parent / "BENCH_web.json"

SEED = 17
DURATION = 6.0
WARMUP = 2.0

#: the CI floors (acceptance criteria of the overload subsystem)
RETENTION_FLOOR = 0.70
COLLAPSE_CEILING = 0.30


def canonical(record: dict) -> bytes:
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode()


def run_cell(attack: str, shedding: bool, **kw):
    start = time.perf_counter()
    result = run_web_experiment(attack=attack, shedding=shedding,
                                duration=DURATION, warmup=WARMUP,
                                seed=SEED, **kw)
    wall = time.perf_counter() - start
    return result, wall


class TestWebOverloadBench:
    @pytest.fixture(scope="class")
    def runs(self):
        baseline, base_wall = run_cell("none", False)
        base_goodput = baseline.figures["goodput_rps"]
        assert base_goodput > 0

        rows = [{
            "attack": "none", "shedding": False,
            "goodput_rps": round(base_goodput, 2), "retention": 1.0,
            "server_shed": 0, "gateway_dropped": 0,
            "good_abandoned": 0, "wall_s": round(base_wall, 2),
        }]
        for attack in ("syn", "elephant", "flash"):
            for shedding in (False, True):
                result, wall = run_cell(attack, shedding)
                figs = result.figures
                rows.append({
                    "attack": attack, "shedding": shedding,
                    "goodput_rps": round(figs["goodput_rps"], 2),
                    "retention": round(figs["goodput_rps"]
                                       / base_goodput, 3),
                    "server_shed": figs["server_shed"],
                    "gateway_dropped": figs["gateway_dropped"],
                    "good_abandoned": figs["good_abandoned"],
                    "wall_s": round(wall, 2),
                })

        serial, _ = run_cell("syn", True)
        sharded, _ = run_cell("syn", True, shard_segments=2)
        identity = {"records_identical":
                    canonical(serial.record())
                    == canonical(sharded.record())}

        print_table(
            "Web overload: goodput retention vs no-attack baseline",
            ["attack", "shedding", "goodput rps", "retention",
             "srv shed", "gw drop", "abandoned"],
            [[r["attack"], r["shedding"], r["goodput_rps"],
              f"{r['retention']:.0%}", r["server_shed"],
              r["gateway_dropped"], r["good_abandoned"]]
             for r in rows])

        doc = {"web": {
            "seed": SEED,
            "duration": DURATION,
            "warmup": WARMUP,
            "baseline_goodput_rps": round(base_goodput, 2),
            "retention_floor": RETENTION_FLOOR,
            "collapse_ceiling": COLLAPSE_CEILING,
            "rows": rows,
            "identity": identity,
        }}
        RESULTS_FILE.write_text(json.dumps(doc, indent=2,
                                           sort_keys=True) + "\n")
        return rows, identity

    @staticmethod
    def _cell(rows, attack: str, shedding: bool) -> dict:
        return next(r for r in rows if r["attack"] == attack
                    and r["shedding"] is shedding)

    def test_shedding_holds_goodput_floor(self, benchmark, runs):
        shape_check(benchmark)
        rows, _ = runs
        for attack in ("syn", "elephant"):
            cell = self._cell(rows, attack, True)
            assert cell["retention"] >= RETENTION_FLOOR, (
                f"{attack}+shedding kept only "
                f"{cell['retention']:.0%} of baseline goodput")

    def test_no_shedding_collapses(self, benchmark, runs):
        shape_check(benchmark)
        rows, _ = runs
        for attack in ("syn", "elephant"):
            cell = self._cell(rows, attack, False)
            assert cell["retention"] < COLLAPSE_CEILING, (
                f"{attack} without shedding retained "
                f"{cell['retention']:.0%} — the attack is too weak "
                f"to prove the defense matters")

    def test_flash_degrades_gracefully(self, benchmark, runs):
        shape_check(benchmark)
        rows, _ = runs
        cell = self._cell(rows, "flash", True)
        # not floor-gated (see module docstring), but the defense must
        # engage and the goods must survive the crowd
        assert cell["server_shed"] > 0
        assert cell["goodput_rps"] > 0

    def test_sharded_record_identical(self, benchmark, runs):
        shape_check(benchmark)
        _, identity = runs
        assert identity["records_identical"]
