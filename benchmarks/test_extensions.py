"""Benchmarks for the implemented §5 future-work extensions.

Not part of the paper's evaluation — these quantify the extensions the
paper only sketched: image distillation on slow links, network-based
ASP deployment, and the fault-tolerant cluster toolkit.
"""

import pytest

from repro.apps.images import run_image_experiment

from .conftest import print_table, shape_check


class TestImageDistillation:
    @pytest.fixture(scope="class")
    def pair(self):
        plain = run_image_experiment(distillation=False)
        distilled = run_image_experiment(distillation=True)
        rows = []
        for p in plain.fetches:
            d = distilled.result_for(p.name)
            rows.append([p.name, f"{p.original_bytes}B",
                         f"{p.latency * 1000:.0f}ms",
                         f"{d.received_bytes}B",
                         f"{d.latency * 1000:.0f}ms"])
        print_table("Image distillation on a 64 kbit/s access link",
                    ["image", "original", "plain latency", "distilled",
                     "latency"], rows)
        return plain, distilled

    def test_latency_speedup(self, benchmark, pair):
        shape_check(benchmark)
        plain, distilled = pair
        speedup = plain.mean_latency() / distilled.mean_latency()
        print(f"\nmean-latency speedup: {speedup:.1f}x")
        assert speedup > 5

    def test_small_images_pass_through(self, benchmark, pair):
        shape_check(benchmark)
        _plain, distilled = pair
        assert not distilled.result_for("icon.simg").distilled

    def test_budget_ablation(self, benchmark):
        shape_check(benchmark)
        rows = []
        latencies = {}
        for budget in (1000, 3000, 10000):
            result = run_image_experiment(distillation=True,
                                          budget_bytes=budget)
            poster = result.result_for("poster.simg")
            latencies[budget] = poster.latency
            rows.append([budget, f"{poster.received_bytes}B",
                         f"{poster.width}x{poster.height}",
                         f"{poster.latency * 1000:.0f}ms"])
        print_table("Ablation: distillation byte budget (poster.simg)",
                    ["budget", "delivered", "dimensions", "latency"],
                    rows)
        # Bigger budgets keep more fidelity at more latency.
        assert latencies[10000] > latencies[1000]

    def test_image_experiment_benchmark(self, benchmark):
        benchmark.group = "image experiment"
        benchmark.pedantic(
            lambda: run_image_experiment(distillation=True),
            rounds=1, iterations=1)


class TestNetworkDeployment:
    def test_deployment_roundtrip_latency(self, benchmark):
        """Time to ship + verify + JIT an ASP across 3 hops, in
        simulated milliseconds (the control-plane cost of management)."""
        shape_check(benchmark)
        from repro.asps import http_gateway_asp
        from repro.net import Network
        from repro.runtime import DeploymentManager, DeploymentService

        net = Network(seed=61)
        admin = net.add_host("admin")
        previous = admin
        routers = []
        for i in range(3):
            router = net.add_router(f"r{i}")
            net.link(previous, router, bandwidth=100e6, latency=0.001)
            previous = router
            routers.append(router)
        net.finalize()
        for router in routers:
            DeploymentService(net, router)
        manager = DeploymentManager(net, admin)
        xfer = manager.push(
            http_gateway_asp("10.0.1.2", ["10.0.2.2", "10.0.3.2"]),
            [r.address for r in routers])
        net.run(until=5.0)
        assert manager.all_ok(xfer)
        latest = max(s.codegen_ms or 0.0
                     for s in manager.status(xfer).values())
        print(f"\n3-node deployment completed by t="
              f"{net.sim.now:.3f}s (max codegen {latest:.2f} ms)")


class TestClusterFaultTolerance:
    def test_failover_downtime(self, benchmark):
        """Requests complete before, during and after a server crash;
        measure the service gap."""
        shape_check(benchmark)
        from repro.apps.http import (HttpClientWorker, HttpServer,
                                     generate_trace)
        from repro.apps.http.cluster import (ClusterManager,
                                             HealthResponder)
        from repro.net import Network

        net = Network(seed=62)
        gateway = net.add_router("gw")
        admin = net.add_host("admin")
        net.link(admin, gateway, bandwidth=100e6)
        servers = []
        for i in range(2):
            host = net.add_host(f"s{i}")
            net.link(host, gateway, bandwidth=100e6)
            servers.append(host)
        client = net.add_host("client")
        net.link(client, gateway)
        net.finalize()
        trace = generate_trace(2000, seed=62)
        for s in servers:
            HttpServer(net, s, trace.sizes)
        responders = [HealthResponder(net, s) for s in servers]
        virtual = gateway.interfaces[0].address
        manager = ClusterManager(net, admin, gateway, virtual, servers,
                                 check_interval=0.5, timeout=0.25)
        worker = HttpClientWorker(net, client, virtual, trace,
                                  request_timeout=2.0)
        worker.start(at=0.5)
        net.sim.at(6.0, responders[0].stop)
        net.run(until=16.0)

        completions = sorted(r.completed for r in worker.completed)
        after_crash = [t for t in completions if t > 6.0]
        assert after_crash, "service never recovered"
        downtime = after_crash[0] - 6.0
        print(f"\nservice gap after crash: {downtime:.2f} s "
              f"(reconfigurations: {manager.generation - 1})")
        assert downtime < 5.0
        assert manager.alive == {"s1"}
